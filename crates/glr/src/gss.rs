//! A Tomita-style parser over a *graph-structured stack* (GSS).
//!
//! The paper's `PAR-PARSE` (see [`crate::pool`]) copies whole parsers; this
//! module is the optimised formulation Tomita/Rekers actually use for real
//! workloads: parse stacks of all parallel parsers are merged into a graph,
//! reductions are applied path-wise, and every reduction records its
//! derivation in a shared [`Forest`]. The observable language is the same;
//! the ablation benchmark compares the two.
//!
//! ## Hot-loop engineering
//!
//! Every piece of per-parse scratch lives in a reusable [`ParseCtx`]: GSS
//! node and edge pools, the double-buffered dense frontiers, the edge
//! de-duplication set, pending-reduction and path buffers, the ACTION cell
//! and the forest arena. A driver run resets the context (O(live entries),
//! no frees) and rebuilds into the warm pools, so a request served through
//! a recycled context performs **zero heap allocations** once the pools
//! have grown to the workload's size. The one-shot [`GssParser::parse`] /
//! [`GssParser::recognize`] conveniences allocate a fresh context per call;
//! serving layers hold onto contexts and use [`GssParser::parse_into`] and
//! friends.
//!
//! ## Streaming input
//!
//! The driver pulls terminals from a [`TokenSource`] instead of indexing a
//! slice: an in-memory sentence and a scanner lexing raw text drive the
//! same loop ([`GssParser::parse_stream`]), which is how the serving
//! layer fuses tokenization into the parse without materialising a token
//! vector per request.
//!
//! ## Incremental re-parse
//!
//! [`GssParser::parse_recorded`] additionally records a [`ParseHistory`]:
//! one checkpoint per token position, taken at the top of the driver
//! loop, holding the pool watermarks (GSS nodes/edges, forest
//! nodes/derivations/children) plus a snapshot of the current frontier
//! (each node's state and edge-list head). When the token sequence is
//! edited, [`GssParser::parse_resumed`] rolls the context back to the
//! checkpoint at the leftmost damaged position — truncating the pools,
//! un-seeing the dropped edges by walking the edge chains, and rebuilding
//! the dense frontier in its recorded insertion order — and re-runs the
//! ordinary loop from there. Because the rolled-back state is *exactly*
//! the state a cold parse of the edited sequence reaches at that position,
//! the resumed parse is bit-identical to a cold parse: same forest node
//! ids, same packed derivations, same roots. Everything left of the damage
//! (the retained forest subtrees) is reused, not rebuilt.

use ipg_grammar::{Grammar, RuleId, SymbolId};
use ipg_lr::{ActionCell, ParserTables, StateId};

use crate::budget::{BudgetGuard, ExhaustReason, ParseBudget};
use crate::forest::{Forest, ForestRef};
use crate::fxhash::FxHashSet;
use crate::source::{SliceTokens, TokenSource};

/// Statistics about one GSS parse, used by tests and the ablation bench.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GssStats {
    /// Number of GSS nodes created.
    pub nodes: usize,
    /// Number of GSS edges created.
    pub edges: usize,
    /// Number of reductions performed (paths reduced).
    pub reductions: usize,
    /// Number of shift actions performed.
    pub shifts: usize,
}

/// The result of a GSS parse: acceptance flag, shared forest and stats.
#[derive(Clone, Debug)]
pub struct GssParseResult {
    /// Whether the input is a sentence of the language.
    pub accepted: bool,
    /// The shared parse forest; `roots()` is empty iff the input was
    /// rejected.
    pub forest: Forest,
    /// Work counters.
    pub stats: GssStats,
    /// The grammar version of the table handle the parse ran against
    /// ([`ParserTables::grammar_version`]). Serving layers that keep
    /// several grammar epochs alive concurrently use this tag to match a
    /// result to the exact table state that produced it.
    pub grammar_version: u64,
}

/// The borrowed-forest result of a context-driven parse: everything
/// [`GssParseResult`] carries except the forest, which stays in the
/// [`ParseCtx`] (read it with [`ParseCtx::forest`]) so that recycled
/// contexts keep their arena capacity across requests.
///
/// A budgeted run ([`GssParser::parse_into_budgeted`] and friends) may stop
/// cooperatively mid-parse, yielding [`ParseOutcome::Exhausted`] with the
/// limit that tripped; the context then holds a *partial* GSS/forest and
/// must be reset (or quarantined) before reuse. Unbudgeted entry points
/// always return [`ParseOutcome::Done`].
#[derive(Clone, Copy, Debug)]
pub enum ParseOutcome {
    /// The parse ran to completion.
    Done {
        /// Whether the input is a sentence of the language.
        accepted: bool,
        /// Work counters.
        stats: GssStats,
        /// The grammar version of the table handle the parse ran against.
        grammar_version: u64,
    },
    /// The parse was cut off by its [`ParseBudget`] before reaching a
    /// verdict; nothing can be said about the input's membership.
    Exhausted {
        /// The first budget limit that tripped.
        reason: ExhaustReason,
        /// Work counters up to the cutoff.
        stats: GssStats,
        /// The grammar version of the table handle the parse ran against.
        grammar_version: u64,
    },
}

impl ParseOutcome {
    /// Whether the input was accepted. An exhausted parse reached no
    /// verdict and reports `false`.
    pub fn accepted(&self) -> bool {
        match *self {
            ParseOutcome::Done { accepted, .. } => accepted,
            ParseOutcome::Exhausted { .. } => false,
        }
    }

    /// Work counters (up to the cutoff, for an exhausted parse).
    pub fn stats(&self) -> GssStats {
        match *self {
            ParseOutcome::Done { stats, .. } | ParseOutcome::Exhausted { stats, .. } => stats,
        }
    }

    /// The grammar version of the table handle the parse ran against.
    pub fn grammar_version(&self) -> u64 {
        match *self {
            ParseOutcome::Done {
                grammar_version, ..
            }
            | ParseOutcome::Exhausted {
                grammar_version, ..
            } => grammar_version,
        }
    }

    /// The budget limit that cut the parse off, if any.
    pub fn exhausted(&self) -> Option<ExhaustReason> {
        match *self {
            ParseOutcome::Done { .. } => None,
            ParseOutcome::Exhausted { reason, .. } => Some(reason),
        }
    }

    /// Packages the outcome with an owned forest as a [`GssParseResult`]
    /// (callers clone or take the context's forest). An exhausted outcome
    /// packages as a rejection — serving layers surface exhaustion as an
    /// error before ever reaching this.
    pub fn into_result(self, forest: Forest) -> GssParseResult {
        GssParseResult {
            accepted: self.accepted(),
            forest,
            stats: self.stats(),
            grammar_version: self.grammar_version(),
        }
    }
}

/// Sentinel for "no edge" in the pooled edge lists.
const NO_EDGE: u32 = u32::MAX;

#[derive(Clone, Copy, Debug)]
struct GssNode {
    state: StateId,
    level: usize,
    /// Head of this node's edge list in the shared pool.
    first_edge: u32,
}

#[derive(Clone, Copy, Debug)]
struct GssEdge {
    target: u32,
    /// Next edge of the same source node (`NO_EDGE` terminates).
    next: u32,
    /// The forest slice the edge spans.
    label: ForestRef,
}

/// A pending reduction: reduce `rule` from `node`, optionally restricted to
/// paths whose first edge is `via` (used when a new edge is added to an
/// already-processed node, Farshi's correction to Tomita's algorithm).
#[derive(Clone, Copy, Debug)]
struct PendingReduction {
    node: u32,
    rule: RuleId,
    via: Option<(u32, ForestRef)>,
}

/// A reusable dense `state -> GSS node` map for one input position. Lookup
/// is an array load; clearing walks only the entries actually inserted.
#[derive(Debug, Default)]
struct Frontier {
    /// `state index -> node + 1` (0 = absent).
    slots: Vec<u32>,
    /// Insertion-ordered `(state, node)` pairs for iteration and clearing.
    entries: Vec<(StateId, u32)>,
}

impl Frontier {
    #[inline]
    fn get(&self, state: StateId) -> Option<u32> {
        match self.slots.get(state.index()) {
            Some(&v) if v != 0 => Some(v - 1),
            _ => None,
        }
    }

    #[inline]
    fn insert(&mut self, state: StateId, node: u32) {
        let i = state.index();
        if i >= self.slots.len() {
            self.slots.resize(i + 1, 0);
        }
        debug_assert_eq!(self.slots[i], 0, "frontier holds one node per state");
        self.slots[i] = node + 1;
        self.entries.push((state, node));
    }

    fn clear(&mut self) {
        for &(state, _) in &self.entries {
            self.slots[state.index()] = 0;
        }
        self.entries.clear();
    }

    fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Packs a [`ForestRef`] into a hashable/dedupable key.
#[inline]
fn label_key(label: ForestRef) -> u64 {
    match label {
        ForestRef::Leaf { symbol, position } => {
            (1 << 63) | ((symbol.index() as u64) << 32) | position as u64
        }
        ForestRef::Node(node) => node.index() as u64,
    }
}

/// One per-token snapshot of the driver's state, taken at the top of the
/// loop (before the token at that position is read): all pools are
/// append-only between checkpoints, so a watermark per pool plus the
/// frontier's edge-list heads is enough to roll back exactly.
#[derive(Clone, Copy, Debug, Default)]
struct Checkpoint {
    nodes: u32,
    edges: u32,
    forest_nodes: u32,
    forest_derivations: u32,
    forest_children: u32,
    /// Slice of [`ParseHistory::frontier`] holding this position's
    /// frontier snapshot.
    frontier_start: u32,
    frontier_len: u32,
}

/// The recorded checkpoints of one [`GssParser::parse_recorded`] run,
/// enabling [`GssParser::parse_resumed`] to re-parse an edited token
/// sequence from the leftmost damaged position instead of from scratch.
///
/// A history is only meaningful together with the [`ParseCtx`] it was
/// recorded into and the tables it was recorded against; resuming with a
/// mismatched context or table state is a logic error (serving layers
/// guard this with their epoch tags and fall back to a full parse).
#[derive(Clone, Debug, Default)]
pub struct ParseHistory {
    checkpoints: Vec<Checkpoint>,
    /// Flat pool of frontier snapshots: `(state, node, saved edge-list
    /// head)` in the frontier's insertion order, which the rollback
    /// replays so the resumed run visits nodes in the same order a cold
    /// parse would.
    frontier: Vec<(StateId, u32, u32)>,
    /// The position of the last recorded checkpoint: the token count when
    /// the run parsed to the end-marker, or the position where every
    /// parallel parser died.
    end_pos: usize,
}

impl ParseHistory {
    /// Creates an empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears the history while keeping pool capacity.
    pub fn clear(&mut self) {
        self.checkpoints.clear();
        self.frontier.clear();
        self.end_pos = 0;
    }

    /// The furthest token position this history can resume from: the
    /// position of the last recorded checkpoint (see
    /// [`GssParser::parse_resumed`], which clamps the damage position to
    /// this).
    pub fn end_pos(&self) -> usize {
        self.end_pos
    }

    /// Records the checkpoint for token position `pos` (loop top: pending
    /// reductions empty, frontier = `entries`).
    fn record(&mut self, pos: usize, nodes: &[GssNode], edges_len: usize, forest: &Forest, entries: &[(StateId, u32)]) {
        debug_assert_eq!(self.checkpoints.len(), pos, "one checkpoint per position");
        let frontier_start = self.frontier.len() as u32;
        for &(state, node) in entries {
            self.frontier.push((state, node, nodes[node as usize].first_edge));
        }
        self.checkpoints.push(Checkpoint {
            nodes: nodes.len() as u32,
            edges: edges_len as u32,
            forest_nodes: forest.num_nodes() as u32,
            forest_derivations: forest.num_derivations() as u32,
            forest_children: forest.num_children() as u32,
            frontier_start,
            frontier_len: entries.len() as u32,
        });
        self.end_pos = pos;
    }
}

/// All per-parse scratch of the GSS driver, reusable across parses.
///
/// A context is plain owned memory — it is not tied to a grammar, a table
/// or a server, so one context can serve parses against different grammar
/// versions back to back (the driver resets it at the start of every run).
/// Serving layers keep one per worker and recycle it request after
/// request; everything inside keeps its capacity across
/// [`ParseCtx::reset`], which is what makes the warm request path
/// allocation-free.
#[derive(Debug, Default)]
pub struct ParseCtx {
    nodes: Vec<GssNode>,
    edges: Vec<GssEdge>,
    /// Edge de-duplication over the whole parse: `(from, to, label)`.
    seen_edges: FxHashSet<(u32, u32, u64)>,
    /// Double-buffered frontiers for the current/next input position.
    cur: Frontier,
    nxt: Frontier,
    pending: Vec<PendingReduction>,
    /// Flat scratch for reduction-path enumeration.
    path_ends: Vec<u32>,
    path_labels: Vec<ForestRef>,
    dfs_labels: Vec<ForestRef>,
    /// Scratch for one derivation's (reversed) children.
    children: Vec<ForestRef>,
    /// Reusable ACTION cell: the tables fill it in place, so steady-state
    /// queries against a warm (or shared, concurrently served) table do
    /// not allocate.
    actions: ActionCell,
    /// Nodes in which an accept action was seen; their root edges are
    /// collected at the very end, after all reductions have added edges.
    accepting: Vec<u32>,
    /// The forest arena derivations are recorded into.
    forest: Forest,
    /// A caller-owned token buffer for pre-lexed requests (filled by e.g.
    /// a sentence tokenizer, parsed via [`GssParser::parse_buffered`]).
    /// Not parse scratch: [`ParseCtx::reset`] leaves it alone.
    pub tokens: Vec<SymbolId>,
}

impl ParseCtx {
    /// Creates an empty context.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears all parse scratch (not [`ParseCtx::tokens`]) while keeping
    /// every pool's capacity. The drivers call this at the start of every
    /// run; it is idempotent.
    pub fn reset(&mut self) {
        self.nodes.clear();
        self.edges.clear();
        self.seen_edges.clear();
        self.cur.clear();
        self.nxt.clear();
        self.pending.clear();
        self.path_ends.clear();
        self.path_labels.clear();
        self.dfs_labels.clear();
        self.children.clear();
        self.actions.clear();
        self.accepting.clear();
        self.forest.clear();
    }

    /// The forest of the most recent parse run in this context (empty
    /// after a recognition-only run or a reset).
    pub fn forest(&self) -> &Forest {
        &self.forest
    }

    /// Moves the forest out of the context, leaving an empty one behind.
    /// The one-shot parse conveniences use this to build an owned
    /// [`GssParseResult`]; recycled contexts should prefer cloning via
    /// [`ParseCtx::forest`] so the arena keeps its capacity.
    pub fn take_forest(&mut self) -> Forest {
        std::mem::take(&mut self.forest)
    }

    /// Rolls this context back to the state `history` recorded at token
    /// position `pos`, and truncates the history so the resumed run
    /// re-records from there. After this the context is bit-identical to a
    /// cold parse of the same token prefix paused at the top of the loop
    /// for position `pos`.
    fn restore(&mut self, history: &mut ParseHistory, pos: usize) {
        let cp = history.checkpoints[pos];
        let fr_start = cp.frontier_start as usize;
        let fr_end = fr_start + cp.frontier_len as usize;

        // Un-see every edge added after the checkpoint. Each such edge
        // hangs off either a node created after the checkpoint (its whole
        // chain is post-checkpoint) or a checkpoint-frontier node (the
        // chain prefix above the saved head is post-checkpoint) — only
        // frontier nodes can gain edges while they are current.
        for &(_, node, saved_head) in &history.frontier[fr_start..fr_end] {
            let mut e = self.nodes[node as usize].first_edge;
            while e != saved_head {
                let edge = self.edges[e as usize];
                self.seen_edges.remove(&(node, edge.target, label_key(edge.label)));
                e = edge.next;
            }
            self.nodes[node as usize].first_edge = saved_head;
        }
        for idx in cp.nodes as usize..self.nodes.len() {
            let mut e = self.nodes[idx].first_edge;
            while e != NO_EDGE {
                let edge = self.edges[e as usize];
                self.seen_edges.remove(&(idx as u32, edge.target, label_key(edge.label)));
                e = edge.next;
            }
        }
        self.nodes.truncate(cp.nodes as usize);
        self.edges.truncate(cp.edges as usize);
        self.forest.truncate(
            cp.forest_nodes as usize,
            cp.forest_derivations as usize,
            cp.forest_children as usize,
        );

        // Rebuild the dense frontier for `pos` in recorded insertion
        // order; everything else at loop top is empty.
        self.cur.clear();
        self.nxt.clear();
        self.pending.clear();
        self.accepting.clear();
        for &(state, node, _) in &history.frontier[fr_start..fr_end] {
            self.cur.insert(state, node);
        }

        // Drop the checkpoints at and beyond `pos`; the resumed run
        // re-records them (identically for `pos` itself).
        history.checkpoints.truncate(pos);
        history.frontier.truncate(fr_start);
        history.end_pos = pos;
    }
}

// Contexts hop between pool slots and worker threads.
#[allow(dead_code)]
fn _assert_ctx_is_send() {
    fn is_send<T: Send>() {}
    is_send::<ParseCtx>();
}

/// The graph-structured-stack parser.
#[derive(Debug)]
pub struct GssParser<'g> {
    grammar: &'g Grammar,
}

impl<'g> GssParser<'g> {
    /// Creates a parser for `grammar`.
    pub fn new(grammar: &'g Grammar) -> Self {
        GssParser { grammar }
    }

    /// Recognises `tokens` without building the parse forest (reductions
    /// still traverse the same graph-structured stack, but no forest nodes
    /// or packed derivations are allocated). Allocates a fresh context;
    /// see [`GssParser::recognize_into`] for the recycled form.
    pub fn recognize(&self, tables: &dyn ParserTables, tokens: &[SymbolId]) -> bool {
        let mut ctx = ParseCtx::new();
        self.recognize_into(&mut ctx, tables, tokens).accepted()
    }

    /// Parses `tokens`, producing the shared forest of all derivations.
    /// Allocates a fresh context; see [`GssParser::parse_into`] for the
    /// recycled form.
    pub fn parse(&self, tables: &dyn ParserTables, tokens: &[SymbolId]) -> GssParseResult {
        let mut ctx = ParseCtx::new();
        let outcome = self.parse_into(&mut ctx, tables, tokens);
        outcome.into_result(ctx.take_forest())
    }

    /// Parses `tokens` in a reusable context. The forest lands in the
    /// context's arena ([`ParseCtx::forest`]); nothing is allocated when
    /// the context's pools are already large enough.
    pub fn parse_into(
        &self,
        ctx: &mut ParseCtx,
        tables: &dyn ParserTables,
        tokens: &[SymbolId],
    ) -> ParseOutcome {
        self.parse_into_budgeted(ctx, tables, tokens, ParseBudget::UNLIMITED)
    }

    /// [`GssParser::parse_into`] under a [`ParseBudget`]: the driver loop
    /// checks the budget every [`crate::budget::BUDGET_CHECK_STRIDE`] work
    /// units and bails with [`ParseOutcome::Exhausted`] when a limit trips,
    /// leaving a partial forest/GSS in the context.
    pub fn parse_into_budgeted(
        &self,
        ctx: &mut ParseCtx,
        tables: &dyn ParserTables,
        tokens: &[SymbolId],
        budget: ParseBudget,
    ) -> ParseOutcome {
        match self.run(ctx, tables, SliceTokens::new(tokens), true, None, 0, budget) {
            Ok(outcome) => outcome,
            Err(infallible) => match infallible {},
        }
    }

    /// Recognises `tokens` in a reusable context (no forest construction).
    pub fn recognize_into(
        &self,
        ctx: &mut ParseCtx,
        tables: &dyn ParserTables,
        tokens: &[SymbolId],
    ) -> ParseOutcome {
        match self.run(
            ctx,
            tables,
            SliceTokens::new(tokens),
            false,
            None,
            0,
            ParseBudget::UNLIMITED,
        ) {
            Ok(outcome) => outcome,
            Err(infallible) => match infallible {},
        }
    }

    /// Parses `tokens` like [`GssParser::parse_into`] while recording a
    /// per-token [`ParseHistory`] (cleared first) into `history`, so a
    /// later edit to the token sequence can be re-parsed incrementally via
    /// [`GssParser::parse_resumed`].
    pub fn parse_recorded(
        &self,
        ctx: &mut ParseCtx,
        tables: &dyn ParserTables,
        tokens: &[SymbolId],
        history: &mut ParseHistory,
    ) -> ParseOutcome {
        self.parse_recorded_budgeted(ctx, tables, tokens, history, ParseBudget::UNLIMITED)
    }

    /// [`GssParser::parse_recorded`] under a [`ParseBudget`]. An exhausted
    /// run leaves the context *and* history partial; callers must discard
    /// both (document sessions desync and rebuild on the next edit).
    pub fn parse_recorded_budgeted(
        &self,
        ctx: &mut ParseCtx,
        tables: &dyn ParserTables,
        tokens: &[SymbolId],
        history: &mut ParseHistory,
        budget: ParseBudget,
    ) -> ParseOutcome {
        history.clear();
        match self.run(
            ctx,
            tables,
            SliceTokens::new(tokens),
            true,
            Some(history),
            0,
            budget,
        ) {
            Ok(outcome) => outcome,
            Err(infallible) => match infallible {},
        }
    }

    /// Re-parses an edited token sequence by rolling `ctx` back to the
    /// recorded checkpoint at `damage` (clamped to the history's reach and
    /// the new length) and running the ordinary driver loop from there.
    ///
    /// Requirements: `ctx` and `history` hold the previous
    /// [`GssParser::parse_recorded`]/resumed run, `tables` is the same
    /// table state it ran against, and `tokens[..damage]` equals the
    /// previous sequence's prefix of that length. The result is then
    /// bit-identical to a cold [`GssParser::parse_recorded`] of `tokens`
    /// (and leaves `ctx`/`history` ready for the next resume).
    ///
    /// Returns the outcome and the position actually resumed from; the
    /// outcome's [`GssStats`] count only the re-run portion, which is how
    /// serving layers measure incremental savings (`states_rerun`).
    pub fn parse_resumed(
        &self,
        ctx: &mut ParseCtx,
        tables: &dyn ParserTables,
        tokens: &[SymbolId],
        history: &mut ParseHistory,
        damage: usize,
    ) -> (ParseOutcome, usize) {
        self.parse_resumed_budgeted(ctx, tables, tokens, history, damage, ParseBudget::UNLIMITED)
    }

    /// [`GssParser::parse_resumed`] under a [`ParseBudget`]. An exhausted
    /// resume leaves the context and history partial; callers must discard
    /// both (document sessions desync and rebuild on the next edit).
    pub fn parse_resumed_budgeted(
        &self,
        ctx: &mut ParseCtx,
        tables: &dyn ParserTables,
        tokens: &[SymbolId],
        history: &mut ParseHistory,
        damage: usize,
        budget: ParseBudget,
    ) -> (ParseOutcome, usize) {
        let resume = damage.min(history.end_pos()).min(tokens.len());
        ctx.restore(history, resume);
        let source = SliceTokens::new(&tokens[resume..]);
        let outcome = match self.run(ctx, tables, source, true, Some(history), resume, budget) {
            Ok(outcome) => outcome,
            Err(infallible) => match infallible {},
        };
        (outcome, resume)
    }

    /// Parses the sentence previously placed in [`ParseCtx::tokens`] —
    /// the buffered form for callers that tokenize into the context's own
    /// buffer and then parse, without a second borrow of the context.
    pub fn parse_buffered(&self, ctx: &mut ParseCtx, tables: &dyn ParserTables) -> ParseOutcome {
        self.parse_buffered_budgeted(ctx, tables, ParseBudget::UNLIMITED)
    }

    /// [`GssParser::parse_buffered`] under a [`ParseBudget`].
    pub fn parse_buffered_budgeted(
        &self,
        ctx: &mut ParseCtx,
        tables: &dyn ParserTables,
        budget: ParseBudget,
    ) -> ParseOutcome {
        let tokens = std::mem::take(&mut ctx.tokens);
        let outcome = self.parse_into_budgeted(ctx, tables, &tokens, budget);
        ctx.tokens = tokens;
        outcome
    }

    /// Parses a streamed token source (lexer→parser fusion): terminals are
    /// pulled one at a time, so no token vector ever exists. A source
    /// error (e.g. a scan error in fused tokenization) aborts the parse;
    /// because the source is only polled as far as the parse advances, an
    /// error beyond the point where every parallel parser already died is
    /// *not* observed — the parse reports a plain rejection.
    pub fn parse_stream<S: TokenSource>(
        &self,
        ctx: &mut ParseCtx,
        tables: &dyn ParserTables,
        source: S,
    ) -> Result<ParseOutcome, S::Error> {
        self.run(ctx, tables, source, true, None, 0, ParseBudget::UNLIMITED)
    }

    /// [`GssParser::parse_stream`] under a [`ParseBudget`] — the budgeted
    /// fused text path.
    pub fn parse_stream_budgeted<S: TokenSource>(
        &self,
        ctx: &mut ParseCtx,
        tables: &dyn ParserTables,
        source: S,
        budget: ParseBudget,
    ) -> Result<ParseOutcome, S::Error> {
        self.run(ctx, tables, source, true, None, 0, budget)
    }

    /// Recognises a streamed token source (no forest construction).
    pub fn recognize_stream<S: TokenSource>(
        &self,
        ctx: &mut ParseCtx,
        tables: &dyn ParserTables,
        source: S,
    ) -> Result<ParseOutcome, S::Error> {
        self.run(ctx, tables, source, false, None, 0, ParseBudget::UNLIMITED)
    }

    /// The driver loop. `record` enables checkpoint recording; `resume_at`
    /// is the token position the context is positioned at (0 = fresh run,
    /// which resets the context; otherwise [`ParseCtx::restore`] has
    /// already rolled it back and `source` yields the tokens from
    /// `resume_at` on). `budget` is consulted through an amortized
    /// [`BudgetGuard`] — one work unit per token and per reduction path
    /// (shifts are counted in bulk) — so the unlimited warm path pays a
    /// counter bump and a never-taken branch.
    #[allow(clippy::too_many_arguments)]
    fn run<S: TokenSource>(
        &self,
        ctx: &mut ParseCtx,
        tables: &dyn ParserTables,
        mut source: S,
        build_forest: bool,
        mut record: Option<&mut ParseHistory>,
        resume_at: usize,
        budget: ParseBudget,
    ) -> Result<ParseOutcome, S::Error> {
        if resume_at == 0 {
            ctx.reset();
        }
        let eof = self.grammar.eof_symbol();
        let mut stats = GssStats::default();
        let mut accepted = false;
        let mut guard = BudgetGuard::new(budget);
        let ParseCtx {
            nodes,
            edges,
            seen_edges,
            cur,
            nxt,
            pending,
            path_ends,
            path_labels,
            dfs_labels,
            children,
            actions,
            accepting,
            forest,
            tokens: _,
        } = ctx;

        if resume_at == 0 {
            let start_node = push_node(nodes, &mut stats, tables.start_state(), 0);
            cur.insert(tables.start_state(), start_node);
        }
        // The start node is always node 0 (the first ever pushed), also
        // across resumed runs (a rollback never drops it).
        let start_node = 0u32;
        debug_assert!(!nodes.is_empty() && !cur.is_empty());

        let mut pos = resume_at;
        loop {
            if let Some(history) = record.as_deref_mut() {
                history.record(pos, nodes, edges.len(), forest, &cur.entries);
            }
            crate::fault::point("mid-gss");
            let symbol = match source.next_token()? {
                Some(symbol) => symbol,
                None => eof,
            };
            debug_assert!(self.grammar.is_terminal(symbol));
            if let Some(reason) = guard.step(
                || gss_bytes(nodes, edges),
                || forest.approx_bytes(),
            ) {
                return Ok(ParseOutcome::Exhausted {
                    reason,
                    stats,
                    grammar_version: tables.grammar_version(),
                });
            }

            // --- Reducer -------------------------------------------------
            debug_assert!(pending.is_empty());
            for i in 0..cur.entries.len() {
                let (state, node) = cur.entries[i];
                tables.actions_into(state, symbol, actions);
                for &rule in &actions.reductions {
                    pending.push(PendingReduction {
                        node,
                        rule,
                        via: None,
                    });
                }
                if actions.accept && symbol == eof {
                    accepted = true;
                    accepting.push(node);
                }
            }

            while let Some(reduction) = pending.pop() {
                let rule = self.grammar.rule(reduction.rule);
                let arity = rule.rhs.len();
                if arity == 0 && reduction.via.is_some() {
                    // Epsilon reductions do not traverse edges; they were
                    // already handled when the node was created.
                    continue;
                }
                path_ends.clear();
                path_labels.clear();
                find_paths(
                    nodes,
                    edges,
                    reduction.node,
                    arity,
                    reduction.via,
                    dfs_labels,
                    path_ends,
                    path_labels,
                );
                for path in 0..path_ends.len() {
                    stats.reductions += 1;
                    if let Some(reason) = guard.step(
                        || gss_bytes(nodes, edges),
                        || forest.approx_bytes(),
                    ) {
                        return Ok(ParseOutcome::Exhausted {
                            reason,
                            stats,
                            grammar_version: tables.grammar_version(),
                        });
                    }
                    let target = path_ends[path];
                    let labels = &path_labels[path * arity..(path + 1) * arity];
                    let start_level = nodes[target as usize].level;
                    let Some(goto_state) = tables.goto(nodes[target as usize].state, rule.lhs)
                    else {
                        continue;
                    };
                    let label = if build_forest {
                        // Labels run from the reducing node outwards, i.e.
                        // rightmost child first; reverse them for the rule.
                        children.clear();
                        children.extend(labels.iter().rev().copied());
                        crate::fault::point("forest-grow");
                        let forest_node = forest.node_for(rule.lhs, start_level, pos);
                        forest.add_derivation(forest_node, reduction.rule, children);
                        ForestRef::Node(forest_node)
                    } else {
                        // Recognition only: a cheap placeholder label that
                        // still distinguishes edges by the non-terminal and
                        // span they cover (needed for edge de-duplication).
                        ForestRef::Leaf {
                            symbol: rule.lhs,
                            position: start_level,
                        }
                    };

                    if let Some(existing) = cur.get(goto_state) {
                        if add_edge(
                            nodes,
                            edges,
                            seen_edges,
                            &mut stats,
                            existing,
                            target,
                            label,
                        ) {
                            // Re-run the reductions of the existing node,
                            // restricted to paths through the new edge.
                            tables.actions_into(goto_state, symbol, actions);
                            for &rule in &actions.reductions {
                                pending.push(PendingReduction {
                                    node: existing,
                                    rule,
                                    via: Some((target, label)),
                                });
                            }
                        }
                    } else {
                        let new_node = push_node(nodes, &mut stats, goto_state, pos);
                        add_edge(
                            nodes,
                            edges,
                            seen_edges,
                            &mut stats,
                            new_node,
                            target,
                            label,
                        );
                        cur.insert(goto_state, new_node);
                        tables.actions_into(goto_state, symbol, actions);
                        for &rule in &actions.reductions {
                            pending.push(PendingReduction {
                                node: new_node,
                                rule,
                                via: None,
                            });
                        }
                        if actions.accept && symbol == eof {
                            accepted = true;
                            accepting.push(new_node);
                        }
                    }
                }
            }

            // On the end-marker there is nothing to shift; acceptance has
            // been decided above.
            if symbol == eof {
                break;
            }

            // --- Shifter -------------------------------------------------
            let shifts_before = stats.shifts as u64;
            let leaf = ForestRef::Leaf {
                symbol,
                position: pos,
            };
            for i in 0..cur.entries.len() {
                let (state, node) = cur.entries[i];
                tables.actions_into(state, symbol, actions);
                if let Some(next_state) = actions.shift {
                    stats.shifts += 1;
                    let target_node = match nxt.get(next_state) {
                        Some(existing) => existing,
                        None => {
                            let created =
                                push_node(nodes, &mut stats, next_state, pos + 1);
                            nxt.insert(next_state, created);
                            created
                        }
                    };
                    add_edge(
                        nodes,
                        edges,
                        seen_edges,
                        &mut stats,
                        target_node,
                        node,
                        leaf,
                    );
                }
            }
            guard.add(stats.shifts as u64 - shifts_before);
            if nxt.is_empty() {
                // Every parallel parser died: the input is rejected. (The
                // accept flag can only have been set on the end-marker.)
                break;
            }
            std::mem::swap(cur, nxt);
            nxt.clear();
            pos += 1;
        }

        if build_forest {
            for &node in accepting.iter() {
                record_roots(nodes, edges, node, start_node, forest);
            }
        }

        Ok(ParseOutcome::Done {
            accepted,
            stats,
            grammar_version: tables.grammar_version(),
        })
    }
}

/// Resident bytes of the GSS node and edge pools, for budget byte caps.
#[inline]
fn gss_bytes(nodes: &[GssNode], edges: &[GssEdge]) -> usize {
    std::mem::size_of_val(nodes) + std::mem::size_of_val(edges)
}

fn push_node(
    nodes: &mut Vec<GssNode>,
    stats: &mut GssStats,
    state: StateId,
    level: usize,
) -> u32 {
    nodes.push(GssNode {
        state,
        level,
        first_edge: NO_EDGE,
    });
    stats.nodes += 1;
    (nodes.len() - 1) as u32
}

/// Adds the edge `from -> to` with `label` unless an identical edge exists.
/// Returns whether the edge was new.
fn add_edge(
    nodes: &mut [GssNode],
    edges: &mut Vec<GssEdge>,
    seen: &mut FxHashSet<(u32, u32, u64)>,
    stats: &mut GssStats,
    from: u32,
    to: u32,
    label: ForestRef,
) -> bool {
    if !seen.insert((from, to, label_key(label))) {
        return false;
    }
    let node = &mut nodes[from as usize];
    edges.push(GssEdge {
        target: to,
        next: node.first_edge,
        label,
    });
    node.first_edge = (edges.len() - 1) as u32;
    stats.edges += 1;
    true
}

/// When an accepting state is reached, every edge from it back to the start
/// node spans the whole input and carries a root of the forest.
fn record_roots(
    nodes: &[GssNode],
    edges: &[GssEdge],
    accepting: u32,
    start_node: u32,
    forest: &mut Forest,
) {
    let mut e = nodes[accepting as usize].first_edge;
    while e != NO_EDGE {
        let edge = edges[e as usize];
        if edge.target == start_node {
            if let ForestRef::Node(f) = edge.label {
                forest.add_root(f);
            }
        }
        e = edge.next;
    }
}

/// Enumerates all paths of exactly `arity` edges starting at `from`,
/// optionally forced to use `via` as the first edge. Results land in the
/// reusable flat buffers: `ends[i]` is the far end of path `i`, and
/// `out_labels[i*arity..(i+1)*arity]` its edge labels from the reducing
/// node outwards (rightmost child first).
#[allow(clippy::too_many_arguments)]
fn find_paths(
    nodes: &[GssNode],
    edges: &[GssEdge],
    from: u32,
    arity: usize,
    via: Option<(u32, ForestRef)>,
    dfs_labels: &mut Vec<ForestRef>,
    ends: &mut Vec<u32>,
    out_labels: &mut Vec<ForestRef>,
) {
    if arity == 0 {
        ends.push(from);
        return;
    }
    dfs_labels.clear();
    dfs_labels.resize(
        arity,
        ForestRef::Leaf {
            symbol: ipg_grammar::SymbolId::from_index(0),
            position: 0,
        },
    );
    match via {
        Some((target, label)) => {
            dfs_labels[0] = label;
            dfs(nodes, edges, target, 1, arity, dfs_labels, ends, out_labels);
        }
        None => dfs(nodes, edges, from, 0, arity, dfs_labels, ends, out_labels),
    }
}

#[allow(clippy::too_many_arguments)]
fn dfs(
    nodes: &[GssNode],
    edges: &[GssEdge],
    node: u32,
    depth: usize,
    arity: usize,
    labels: &mut Vec<ForestRef>,
    ends: &mut Vec<u32>,
    out_labels: &mut Vec<ForestRef>,
) {
    if depth == arity {
        ends.push(node);
        out_labels.extend_from_slice(labels);
        return;
    }
    let mut e = nodes[node as usize].first_edge;
    while e != NO_EDGE {
        let edge = edges[e as usize];
        labels[depth] = edge.label;
        dfs(
            nodes,
            edges,
            edge.target,
            depth + 1,
            arity,
            labels,
            ends,
            out_labels,
        );
        e = edge.next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipg_grammar::fixtures;
    use ipg_lr::{tokenize_names, Lr0Automaton, ParseTable};

    fn lr0_table(g: &Grammar) -> ParseTable {
        ParseTable::lr0(&Lr0Automaton::build(g), g)
    }

    #[test]
    fn accepts_and_rejects_boolean_sentences() {
        let g = fixtures::booleans();
        let table = lr0_table(&g);
        let parser = GssParser::new(&g);
        for (sentence, expected) in [
            ("true", true),
            ("true or false", true),
            ("true and false or true", true),
            ("", false),
            ("or true", false),
            ("true true", false),
        ] {
            let tokens = tokenize_names(&g, sentence).unwrap();
            assert_eq!(
                parser.recognize(&table, &tokens),
                expected,
                "sentence `{sentence}`"
            );
        }
    }

    #[test]
    fn unambiguous_sentence_yields_single_tree() {
        let g = fixtures::booleans();
        let table = lr0_table(&g);
        let parser = GssParser::new(&g);
        let tokens = tokenize_names(&g, "true or false").unwrap();
        let result = parser.parse(&table, &tokens);
        assert!(result.accepted);
        assert_eq!(result.forest.tree_count(100), 1);
        let tree = result.forest.first_tree().unwrap();
        assert_eq!(tree.to_sexpr(&g), "(B (B true) or (B false))");
    }

    #[test]
    fn ambiguous_sentence_packs_multiple_trees() {
        // `true or true or true` has exactly 2 parses (left- or
        // right-nested `or`).
        let g = fixtures::booleans();
        let table = lr0_table(&g);
        let parser = GssParser::new(&g);
        let tokens = tokenize_names(&g, "true or true or true").unwrap();
        let result = parser.parse(&table, &tokens);
        assert!(result.accepted);
        assert!(result.forest.is_ambiguous());
        assert_eq!(result.forest.tree_count(100), 2);
        let trees = result.forest.trees(10);
        assert_eq!(trees.len(), 2);
        for t in &trees {
            assert_eq!(t.leaf_count(), 5);
        }
    }

    #[test]
    fn ambiguity_grows_with_catalan_numbers() {
        // n operators => Catalan(n) parses: 1, 2, 5, 14 ...
        let g = fixtures::ambiguous_expressions();
        let table = lr0_table(&g);
        let parser = GssParser::new(&g);
        for (ops, expected) in [(1usize, 1usize), (2, 2), (3, 5), (4, 14)] {
            let mut sentence = String::from("id");
            for _ in 0..ops {
                sentence.push_str(" + id");
            }
            let tokens = tokenize_names(&g, &sentence).unwrap();
            let result = parser.parse(&table, &tokens);
            assert!(result.accepted);
            assert_eq!(
                result.forest.tree_count(1000),
                expected,
                "number of parses of `{sentence}`"
            );
        }
    }

    #[test]
    fn palindrome_grammar_with_epsilon_rules() {
        let g = fixtures::palindromes();
        let table = lr0_table(&g);
        let parser = GssParser::new(&g);
        for (sentence, expected) in [
            ("", true),
            ("a", true),
            ("a b a", true),
            ("a b b a", true),
            ("a b", false),
        ] {
            let tokens = tokenize_names(&g, sentence).unwrap();
            assert_eq!(
                parser.recognize(&table, &tokens),
                expected,
                "sentence `{sentence}`"
            );
        }
    }

    #[test]
    fn gss_and_pool_agree() {
        let g = fixtures::booleans();
        let table = lr0_table(&g);
        let gss = GssParser::new(&g);
        let pool = crate::pool::PoolGlrParser::new(&g);
        for sentence in [
            "true",
            "true or false and true or true",
            "true and and",
            "false or",
            "true or true and true or false",
        ] {
            let tokens = tokenize_names(&g, sentence).unwrap();
            assert_eq!(
                gss.recognize(&table, &tokens),
                pool.recognize(&table, &tokens).unwrap(),
                "sentence `{sentence}`"
            );
        }
    }

    #[test]
    fn forest_fringe_matches_input() {
        let g = fixtures::ambiguous_expressions();
        let table = lr0_table(&g);
        let parser = GssParser::new(&g);
        let tokens = tokenize_names(&g, "id + id * id").unwrap();
        let result = parser.parse(&table, &tokens);
        for tree in result.forest.trees(100) {
            assert_eq!(tree.fringe(), tokens);
        }
    }

    #[test]
    fn stats_are_populated() {
        let g = fixtures::booleans();
        let table = lr0_table(&g);
        let parser = GssParser::new(&g);
        let tokens = tokenize_names(&g, "true or true or true").unwrap();
        let result = parser.parse(&table, &tokens);
        assert!(result.stats.nodes > 0);
        assert!(result.stats.edges >= result.stats.nodes - 1);
        assert!(result.stats.shifts >= tokens.len());
        assert!(result.stats.reductions > 0);
    }

    #[test]
    fn rejected_input_produces_empty_forest() {
        let g = fixtures::booleans();
        let table = lr0_table(&g);
        let parser = GssParser::new(&g);
        let tokens = tokenize_names(&g, "true or").unwrap();
        let result = parser.parse(&table, &tokens);
        assert!(!result.accepted);
        assert!(result.forest.roots().is_empty());
        assert!(result.forest.first_tree().is_none());
    }

    #[test]
    fn recycled_context_reproduces_fresh_context_results() {
        let g = fixtures::booleans();
        let table = lr0_table(&g);
        let parser = GssParser::new(&g);
        let mut ctx = ParseCtx::new();
        for sentence in [
            "true or true or true",
            "true and",
            "",
            "false",
            "true or false and true",
            "or",
            "true or true or true", // repeat: warm pools, same digest
        ] {
            let tokens = tokenize_names(&g, sentence).unwrap();
            let outcome = parser.parse_into(&mut ctx, &table, &tokens);
            let fresh = parser.parse(&table, &tokens);
            assert_eq!(outcome.accepted(), fresh.accepted, "`{sentence}`");
            assert_eq!(
                ctx.forest().tree_count(100),
                fresh.forest.tree_count(100),
                "`{sentence}`"
            );
            assert_eq!(
                ctx.forest().first_tree().map(|t| t.to_sexpr(&g)),
                fresh.forest.first_tree().map(|t| t.to_sexpr(&g)),
                "`{sentence}`"
            );
        }
    }

    #[test]
    fn buffered_parse_uses_the_context_token_buffer() {
        let g = fixtures::booleans();
        let table = lr0_table(&g);
        let parser = GssParser::new(&g);
        let mut ctx = ParseCtx::new();
        ctx.tokens = tokenize_names(&g, "true and false").unwrap();
        let outcome = parser.parse_buffered(&mut ctx, &table);
        assert!(outcome.accepted());
        // The buffer survives the parse (reset leaves it alone).
        assert_eq!(ctx.tokens.len(), 3);
    }

    /// Digest of a parse for exact-equality comparison: acceptance, roots,
    /// tree count and the first tree's shape.
    fn digest(g: &Grammar, accepted: bool, forest: &Forest) -> (bool, usize, usize, Option<String>) {
        (
            accepted,
            forest.roots().len(),
            forest.tree_count(64),
            forest.first_tree().map(|t| t.to_sexpr(g)),
        )
    }

    /// For every prefix-damage position, edit `base` into `edited` via a
    /// resumed parse and check it matches a cold parse of `edited` exactly.
    fn check_resume(g: &Grammar, base: &str, edited: &str) {
        let table = lr0_table(g);
        let parser = GssParser::new(g);
        let base_tokens = tokenize_names(g, base).unwrap();
        let edited_tokens = tokenize_names(g, edited).unwrap();
        let common = base_tokens
            .iter()
            .zip(&edited_tokens)
            .take_while(|(a, b)| a == b)
            .count();
        let mut cold_ctx = ParseCtx::new();
        let mut cold_history = ParseHistory::new();
        let cold = parser.parse_recorded(&mut cold_ctx, &table, &edited_tokens, &mut cold_history);
        let want = digest(g, cold.accepted(), cold_ctx.forest());
        for damage in 0..=common {
            let mut ctx = ParseCtx::new();
            let mut history = ParseHistory::new();
            parser.parse_recorded(&mut ctx, &table, &base_tokens, &mut history);
            let (outcome, resumed) =
                parser.parse_resumed(&mut ctx, &table, &edited_tokens, &mut history, damage);
            assert!(resumed <= damage);
            assert_eq!(
                digest(g, outcome.accepted(), ctx.forest()),
                want,
                "`{base}` -> `{edited}` resumed at {resumed} (damage {damage})"
            );
            // The rolled-forward history must itself support further
            // resumes: replay the same edit once more at the same damage.
            let (again, _) =
                parser.parse_resumed(&mut ctx, &table, &edited_tokens, &mut history, damage);
            assert_eq!(digest(g, again.accepted(), ctx.forest()), want, "second resume");
        }
    }

    #[test]
    fn resumed_parse_matches_cold_parse() {
        let g = fixtures::booleans();
        for (base, edited) in [
            ("true or false", "true or true"),
            ("true or false", "true or false and true"),
            ("true and false or true", "true and true"),
            ("true", "true or true or true"),
            ("true or true or true", "true"),
            ("true or", "true or false"),
            ("true or false", "true true"),
            ("", "true"),
            ("true", ""),
        ] {
            check_resume(&g, base, edited);
        }
    }

    #[test]
    fn resumed_parse_matches_cold_parse_ambiguous() {
        let g = fixtures::ambiguous_expressions();
        for (base, edited) in [
            ("id + id * id", "id + id + id"),
            ("id + id", "id + id * id + id"),
            ("id + id * id + id", "id + id * id"),
            ("id +", "id + id"),
        ] {
            check_resume(&g, base, edited);
        }
    }

    #[test]
    fn resumed_parse_matches_cold_parse_epsilon_rules() {
        let g = fixtures::palindromes();
        for (base, edited) in [
            ("a b a", "a b b a"),
            ("a b b a", "a b a"),
            ("", "a"),
            ("a", "a b"),
            ("a b", "a b a"),
        ] {
            check_resume(&g, base, edited);
        }
    }

    #[test]
    fn resume_after_append_to_accepted_input() {
        // Damage position == old token count: the whole old parse is
        // retained and only the appended tokens run.
        let g = fixtures::booleans();
        let table = lr0_table(&g);
        let parser = GssParser::new(&g);
        let base = tokenize_names(&g, "true or false").unwrap();
        let edited = tokenize_names(&g, "true or false and true").unwrap();
        let mut ctx = ParseCtx::new();
        let mut history = ParseHistory::new();
        parser.parse_recorded(&mut ctx, &table, &base, &mut history);
        assert_eq!(history.end_pos(), base.len());
        let (outcome, resumed) =
            parser.parse_resumed(&mut ctx, &table, &edited, &mut history, base.len());
        assert_eq!(resumed, base.len());
        assert!(outcome.accepted());
        let cold = parser.parse(&table, &edited);
        assert_eq!(
            ctx.forest().first_tree().map(|t| t.to_sexpr(&g)),
            cold.forest.first_tree().map(|t| t.to_sexpr(&g))
        );
    }

    #[test]
    fn stream_parse_agrees_with_slice_parse() {
        let g = fixtures::booleans();
        let table = lr0_table(&g);
        let parser = GssParser::new(&g);
        let mut ctx = ParseCtx::new();
        for sentence in ["true or false", "true true", ""] {
            let tokens = tokenize_names(&g, sentence).unwrap();
            let outcome = parser
                .parse_stream(&mut ctx, &table, SliceTokens::new(&tokens))
                .unwrap();
            assert_eq!(
                outcome.accepted(),
                parser.recognize(&table, &tokens),
                "`{sentence}`"
            );
        }
    }

    #[test]
    fn tiny_fuel_budget_exhausts_mid_parse() {
        let g = fixtures::booleans();
        let table = lr0_table(&g);
        let parser = GssParser::new(&g);
        let mut ctx = ParseCtx::new();
        let sentence = "true or false and true or true and false or true";
        let tokens = tokenize_names(&g, sentence).unwrap();
        let budget = ParseBudget::default().with_fuel(1);
        let outcome = parser.parse_into_budgeted(&mut ctx, &table, &tokens, budget);
        assert_eq!(outcome.exhausted(), Some(ExhaustReason::Fuel));
        assert!(!outcome.accepted());
        // A reset context parses fine afterwards (partial state is benign
        // once reset).
        let again = parser.parse_into(&mut ctx, &table, &tokens);
        assert!(again.accepted());
        assert!(again.exhausted().is_none());
    }

    #[test]
    fn tiny_gss_byte_cap_exhausts() {
        let g = fixtures::booleans();
        let table = lr0_table(&g);
        let parser = GssParser::new(&g);
        let mut ctx = ParseCtx::new();
        let sentence = "true or false and true or true and false or true";
        let tokens = tokenize_names(&g, sentence).unwrap();
        let budget = ParseBudget::default().with_max_gss_bytes(1);
        let outcome = parser.parse_into_budgeted(&mut ctx, &table, &tokens, budget);
        assert_eq!(outcome.exhausted(), Some(ExhaustReason::GssBytes));
    }

    #[test]
    fn generous_budget_is_outcome_identical_to_unbudgeted() {
        let g = fixtures::ambiguous_expressions();
        let table = lr0_table(&g);
        let parser = GssParser::new(&g);
        let mut ctx = ParseCtx::new();
        let sentence = "id + id * id + id";
        let tokens = tokenize_names(&g, sentence).unwrap();
        let budget = ParseBudget::default()
            .with_fuel(10_000_000)
            .with_max_gss_bytes(64 << 20)
            .with_max_forest_bytes(64 << 20);
        let budgeted = parser.parse_into_budgeted(&mut ctx, &table, &tokens, budget);
        let budgeted_digest = digest(&g, budgeted.accepted(), ctx.forest());
        assert!(budgeted.exhausted().is_none());
        let plain = parser.parse_into(&mut ctx, &table, &tokens);
        assert_eq!(budgeted_digest, digest(&g, plain.accepted(), ctx.forest()));
        assert_eq!(budgeted.stats(), plain.stats());
    }

    use ipg_grammar::Grammar;
}
