//! A Tomita-style parser over a *graph-structured stack* (GSS).
//!
//! The paper's `PAR-PARSE` (see [`crate::pool`]) copies whole parsers; this
//! module is the optimised formulation Tomita/Rekers actually use for real
//! workloads: parse stacks of all parallel parsers are merged into a graph,
//! reductions are applied path-wise, and every reduction records its
//! derivation in a shared [`Forest`]. The observable language is the same;
//! the ablation benchmark compares the two.

use std::collections::HashMap;

use ipg_grammar::{Grammar, RuleId, SymbolId};
use ipg_lr::{Action, ParserTables, StateId};

use crate::forest::{Forest, ForestRef};

/// Statistics about one GSS parse, used by tests and the ablation bench.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GssStats {
    /// Number of GSS nodes created.
    pub nodes: usize,
    /// Number of GSS edges created.
    pub edges: usize,
    /// Number of reductions performed (paths reduced).
    pub reductions: usize,
    /// Number of shift actions performed.
    pub shifts: usize,
}

/// The result of a GSS parse: acceptance flag, shared forest and stats.
#[derive(Clone, Debug)]
pub struct GssParseResult {
    /// Whether the input is a sentence of the language.
    pub accepted: bool,
    /// The shared parse forest; `roots()` is empty iff the input was
    /// rejected.
    pub forest: Forest,
    /// Work counters.
    pub stats: GssStats,
}

#[derive(Clone, Debug)]
struct GssNode {
    state: StateId,
    level: usize,
    /// Edges to predecessor nodes, labelled with the forest slice that the
    /// edge spans.
    edges: Vec<GssEdge>,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct GssEdge {
    target: usize,
    label: ForestRef,
}

/// A pending reduction: reduce `rule` from `node`, optionally restricted to
/// paths whose first edge is `via` (used when a new edge is added to an
/// already-processed node, Farshi's correction to Tomita's algorithm).
#[derive(Clone, Copy, Debug)]
struct PendingReduction {
    node: usize,
    rule: RuleId,
    via: Option<GssEdge>,
}

/// The graph-structured-stack parser.
#[derive(Debug)]
pub struct GssParser<'g> {
    grammar: &'g Grammar,
}

impl<'g> GssParser<'g> {
    /// Creates a parser for `grammar`.
    pub fn new(grammar: &'g Grammar) -> Self {
        GssParser { grammar }
    }

    /// Recognises `tokens` without building the parse forest (reductions
    /// still traverse the same graph-structured stack, but no forest nodes
    /// or packed derivations are allocated).
    pub fn recognize(&self, tables: &mut dyn ParserTables, tokens: &[SymbolId]) -> bool {
        self.run(tables, tokens, false).accepted
    }

    /// Parses `tokens`, producing the shared forest of all derivations.
    pub fn parse(&self, tables: &mut dyn ParserTables, tokens: &[SymbolId]) -> GssParseResult {
        self.run(tables, tokens, true)
    }

    fn run(
        &self,
        tables: &mut dyn ParserTables,
        tokens: &[SymbolId],
        build_forest: bool,
    ) -> GssParseResult {
        let eof = self.grammar.eof_symbol();
        let mut forest = Forest::new();
        let mut stats = GssStats::default();
        let mut accepted = false;

        let mut nodes: Vec<GssNode> = Vec::new();
        // Frontier: state -> node index, for the current input position.
        let mut frontier: HashMap<StateId, usize> = HashMap::new();
        let start_node = push_node(&mut nodes, &mut stats, tables.start_state(), 0);
        frontier.insert(tables.start_state(), start_node);
        // Nodes in which an accept action was seen; their root edges are
        // collected at the very end, after all reductions have added edges.
        let mut accepting_nodes: Vec<usize> = Vec::new();

        let n = tokens.len();
        for pos in 0..=n {
            let symbol = tokens.get(pos).copied().unwrap_or(eof);
            debug_assert!(self.grammar.is_terminal(symbol));

            // --- Reducer -------------------------------------------------
            let mut pending: Vec<PendingReduction> = Vec::new();
            for (&state, &node) in frontier.iter() {
                for action in tables.actions(state, symbol) {
                    match action {
                        Action::Reduce(rule) => pending.push(PendingReduction {
                            node,
                            rule,
                            via: None,
                        }),
                        Action::Accept => {
                            if symbol == eof {
                                accepted = true;
                                accepting_nodes.push(node);
                            }
                        }
                        Action::Shift(_) => {}
                    }
                }
            }

            while let Some(reduction) = pending.pop() {
                let rule = self.grammar.rule(reduction.rule);
                let arity = rule.rhs.len();
                if arity == 0 && reduction.via.is_some() {
                    // Epsilon reductions do not traverse edges; they were
                    // already handled when the node was created.
                    continue;
                }
                let paths = find_paths(&nodes, reduction.node, arity, reduction.via);
                for path in paths {
                    stats.reductions += 1;
                    let target = path.end;
                    let start_level = nodes[target].level;
                    let Some(goto_state) = tables.goto(nodes[target].state, rule.lhs) else {
                        continue;
                    };
                    let label = if build_forest {
                        let children: Vec<ForestRef> =
                            path.labels.iter().rev().copied().collect();
                        let forest_node = forest.node_for(rule.lhs, start_level, pos);
                        forest.add_derivation(forest_node, reduction.rule, children);
                        ForestRef::Node(forest_node)
                    } else {
                        // Recognition only: a cheap placeholder label that
                        // still distinguishes edges by the non-terminal and
                        // span they cover (needed for edge de-duplication).
                        ForestRef::Leaf {
                            symbol: rule.lhs,
                            position: start_level,
                        }
                    };

                    if let Some(&existing) = frontier.get(&goto_state) {
                        let edge = GssEdge { target, label };
                        if !nodes[existing].edges.contains(&edge) {
                            nodes[existing].edges.push(edge);
                            stats.edges += 1;
                            // Re-run the reductions of the existing node,
                            // restricted to paths through the new edge.
                            for action in tables.actions(goto_state, symbol) {
                                if let Action::Reduce(r) = action {
                                    pending.push(PendingReduction {
                                        node: existing,
                                        rule: r,
                                        via: Some(edge),
                                    });
                                }
                            }
                        }
                    } else {
                        let new_node = push_node(&mut nodes, &mut stats, goto_state, pos);
                        nodes[new_node].edges.push(GssEdge { target, label });
                        stats.edges += 1;
                        frontier.insert(goto_state, new_node);
                        for action in tables.actions(goto_state, symbol) {
                            match action {
                                Action::Reduce(r) => pending.push(PendingReduction {
                                    node: new_node,
                                    rule: r,
                                    via: None,
                                }),
                                Action::Accept => {
                                    if symbol == eof {
                                        accepted = true;
                                        accepting_nodes.push(new_node);
                                    }
                                }
                                Action::Shift(_) => {}
                            }
                        }
                    }
                }
            }

            // On the last position (the end-marker) there is nothing to
            // shift; acceptance has been decided above.
            if pos == n {
                break;
            }

            // --- Shifter -------------------------------------------------
            let mut next_frontier: HashMap<StateId, usize> = HashMap::new();
            let leaf = ForestRef::Leaf {
                symbol,
                position: pos,
            };
            for (&state, &node) in frontier.iter() {
                for action in tables.actions(state, symbol) {
                    if let Action::Shift(next_state) = action {
                        stats.shifts += 1;
                        let target_node = match next_frontier.get(&next_state) {
                            Some(&existing) => existing,
                            None => {
                                let created =
                                    push_node(&mut nodes, &mut stats, next_state, pos + 1);
                                next_frontier.insert(next_state, created);
                                created
                            }
                        };
                        let edge = GssEdge {
                            target: node,
                            label: leaf,
                        };
                        if !nodes[target_node].edges.contains(&edge) {
                            nodes[target_node].edges.push(edge);
                            stats.edges += 1;
                        }
                    }
                }
            }
            if next_frontier.is_empty() {
                // Every parallel parser died: the input is rejected. (The
                // accept flag can only have been set on the end-marker.)
                break;
            }
            frontier = next_frontier;
        }

        if build_forest {
            for &node in &accepting_nodes {
                record_roots(&nodes, node, start_node, &mut forest);
            }
        }

        GssParseResult {
            accepted,
            forest,
            stats,
        }
    }
}

fn push_node(nodes: &mut Vec<GssNode>, stats: &mut GssStats, state: StateId, level: usize) -> usize {
    nodes.push(GssNode {
        state,
        level,
        edges: Vec::new(),
    });
    stats.nodes += 1;
    nodes.len() - 1
}

/// When an accepting state is reached, every edge from it back to the start
/// node spans the whole input and carries a root of the forest.
fn record_roots(nodes: &[GssNode], accepting: usize, start_node: usize, forest: &mut Forest) {
    for edge in &nodes[accepting].edges {
        if edge.target == start_node {
            if let ForestRef::Node(f) = edge.label {
                forest.add_root(f);
            }
        }
    }
}

struct ReductionPath {
    /// Node at the far end of the path (the state to consult GOTO in).
    end: usize,
    /// Edge labels along the path, from the reducing node outwards
    /// (i.e. rightmost child first).
    labels: Vec<ForestRef>,
}

/// Enumerates all paths of exactly `length` edges starting at `from`,
/// optionally forced to use `via` as the first edge.
fn find_paths(
    nodes: &[GssNode],
    from: usize,
    length: usize,
    via: Option<GssEdge>,
) -> Vec<ReductionPath> {
    let mut result = Vec::new();
    if length == 0 {
        result.push(ReductionPath {
            end: from,
            labels: Vec::new(),
        });
        return result;
    }
    // Depth-first enumeration of paths.
    let mut stack: Vec<(usize, usize, Vec<ForestRef>)> = Vec::new();
    let first_edges: Vec<GssEdge> = match via {
        Some(edge) => vec![edge],
        None => nodes[from].edges.clone(),
    };
    for edge in first_edges {
        stack.push((edge.target, 1, vec![edge.label]));
    }
    while let Some((node, depth, labels)) = stack.pop() {
        if depth == length {
            result.push(ReductionPath {
                end: node,
                labels,
            });
            continue;
        }
        for edge in &nodes[node].edges {
            let mut next_labels = labels.clone();
            next_labels.push(edge.label);
            stack.push((edge.target, depth + 1, next_labels));
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipg_grammar::fixtures;
    use ipg_lr::{tokenize_names, Lr0Automaton, ParseTable};

    fn lr0_table(g: &Grammar) -> ParseTable {
        ParseTable::lr0(&Lr0Automaton::build(g), g)
    }

    #[test]
    fn accepts_and_rejects_boolean_sentences() {
        let g = fixtures::booleans();
        let mut table = lr0_table(&g);
        let parser = GssParser::new(&g);
        for (sentence, expected) in [
            ("true", true),
            ("true or false", true),
            ("true and false or true", true),
            ("", false),
            ("or true", false),
            ("true true", false),
        ] {
            let tokens = tokenize_names(&g, sentence).unwrap();
            assert_eq!(
                parser.recognize(&mut table, &tokens),
                expected,
                "sentence `{sentence}`"
            );
        }
    }

    #[test]
    fn unambiguous_sentence_yields_single_tree() {
        let g = fixtures::booleans();
        let mut table = lr0_table(&g);
        let parser = GssParser::new(&g);
        let tokens = tokenize_names(&g, "true or false").unwrap();
        let result = parser.parse(&mut table, &tokens);
        assert!(result.accepted);
        assert_eq!(result.forest.tree_count(100), 1);
        let tree = result.forest.first_tree().unwrap();
        assert_eq!(tree.to_sexpr(&g), "(B (B true) or (B false))");
    }

    #[test]
    fn ambiguous_sentence_packs_multiple_trees() {
        // `true or true or true` has exactly 2 parses (left- or
        // right-nested `or`).
        let g = fixtures::booleans();
        let mut table = lr0_table(&g);
        let parser = GssParser::new(&g);
        let tokens = tokenize_names(&g, "true or true or true").unwrap();
        let result = parser.parse(&mut table, &tokens);
        assert!(result.accepted);
        assert!(result.forest.is_ambiguous());
        assert_eq!(result.forest.tree_count(100), 2);
        let trees = result.forest.trees(10);
        assert_eq!(trees.len(), 2);
        for t in &trees {
            assert_eq!(t.leaf_count(), 5);
        }
    }

    #[test]
    fn ambiguity_grows_with_catalan_numbers() {
        // n operators => Catalan(n) parses: 1, 2, 5, 14 ...
        let g = fixtures::ambiguous_expressions();
        let mut table = lr0_table(&g);
        let parser = GssParser::new(&g);
        for (ops, expected) in [(1usize, 1usize), (2, 2), (3, 5), (4, 14)] {
            let mut sentence = String::from("id");
            for _ in 0..ops {
                sentence.push_str(" + id");
            }
            let tokens = tokenize_names(&g, &sentence).unwrap();
            let result = parser.parse(&mut table, &tokens);
            assert!(result.accepted);
            assert_eq!(
                result.forest.tree_count(1000),
                expected,
                "number of parses of `{sentence}`"
            );
        }
    }

    #[test]
    fn palindrome_grammar_with_epsilon_rules() {
        let g = fixtures::palindromes();
        let mut table = lr0_table(&g);
        let parser = GssParser::new(&g);
        for (sentence, expected) in [
            ("", true),
            ("a", true),
            ("a b a", true),
            ("a b b a", true),
            ("a b", false),
        ] {
            let tokens = tokenize_names(&g, sentence).unwrap();
            assert_eq!(
                parser.recognize(&mut table, &tokens),
                expected,
                "sentence `{sentence}`"
            );
        }
    }

    #[test]
    fn gss_and_pool_agree() {
        let g = fixtures::booleans();
        let mut table = lr0_table(&g);
        let gss = GssParser::new(&g);
        let pool = crate::pool::PoolGlrParser::new(&g);
        for sentence in [
            "true",
            "true or false and true or true",
            "true and and",
            "false or",
            "true or true and true or false",
        ] {
            let tokens = tokenize_names(&g, sentence).unwrap();
            assert_eq!(
                gss.recognize(&mut table, &tokens),
                pool.recognize(&mut table, &tokens).unwrap(),
                "sentence `{sentence}`"
            );
        }
    }

    #[test]
    fn forest_fringe_matches_input() {
        let g = fixtures::ambiguous_expressions();
        let mut table = lr0_table(&g);
        let parser = GssParser::new(&g);
        let tokens = tokenize_names(&g, "id + id * id").unwrap();
        let result = parser.parse(&mut table, &tokens);
        for tree in result.forest.trees(100) {
            assert_eq!(tree.fringe(), tokens);
        }
    }

    #[test]
    fn stats_are_populated() {
        let g = fixtures::booleans();
        let mut table = lr0_table(&g);
        let parser = GssParser::new(&g);
        let tokens = tokenize_names(&g, "true or true or true").unwrap();
        let result = parser.parse(&mut table, &tokens);
        assert!(result.stats.nodes > 0);
        assert!(result.stats.edges >= result.stats.nodes - 1);
        assert!(result.stats.shifts >= tokens.len());
        assert!(result.stats.reductions > 0);
    }

    #[test]
    fn rejected_input_produces_empty_forest() {
        let g = fixtures::booleans();
        let mut table = lr0_table(&g);
        let parser = GssParser::new(&g);
        let tokens = tokenize_names(&g, "true or").unwrap();
        let result = parser.parse(&mut table, &tokens);
        assert!(!result.accepted);
        assert!(result.forest.roots().is_empty());
        assert!(result.forest.first_tree().is_none());
    }

    use ipg_grammar::Grammar;
}
