//! A Tomita-style parser over a *graph-structured stack* (GSS).
//!
//! The paper's `PAR-PARSE` (see [`crate::pool`]) copies whole parsers; this
//! module is the optimised formulation Tomita/Rekers actually use for real
//! workloads: parse stacks of all parallel parsers are merged into a graph,
//! reductions are applied path-wise, and every reduction records its
//! derivation in a shared [`Forest`]. The observable language is the same;
//! the ablation benchmark compares the two.
//!
//! ## Hot-loop engineering
//!
//! The driver is written to be allocation-free per token once its scratch
//! structures have warmed up:
//!
//! * GSS edges live in one pooled `Vec` as per-node linked lists (no
//!   per-node edge vectors);
//! * the active frontier is a pair of reusable dense state-indexed maps
//!   (`state -> node`, O(1) lookup, O(live states) clear), double-buffered
//!   between input positions;
//! * edge de-duplication is a single probe of an [`FxHashSet`] keyed by
//!   `(from, to, label)` instead of a linear scan of the node's edges;
//! * reduction paths are enumerated into reusable flat scratch buffers —
//!   no per-path label vectors are cloned.

use ipg_grammar::{Grammar, RuleId, SymbolId};
use ipg_lr::{ActionCell, ParserTables, StateId};

use crate::forest::{Forest, ForestRef};
use crate::fxhash::FxHashSet;

/// Statistics about one GSS parse, used by tests and the ablation bench.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GssStats {
    /// Number of GSS nodes created.
    pub nodes: usize,
    /// Number of GSS edges created.
    pub edges: usize,
    /// Number of reductions performed (paths reduced).
    pub reductions: usize,
    /// Number of shift actions performed.
    pub shifts: usize,
}

/// The result of a GSS parse: acceptance flag, shared forest and stats.
#[derive(Clone, Debug)]
pub struct GssParseResult {
    /// Whether the input is a sentence of the language.
    pub accepted: bool,
    /// The shared parse forest; `roots()` is empty iff the input was
    /// rejected.
    pub forest: Forest,
    /// Work counters.
    pub stats: GssStats,
    /// The grammar version of the table handle the parse ran against
    /// ([`ParserTables::grammar_version`]). Serving layers that keep
    /// several grammar epochs alive concurrently use this tag to match a
    /// result to the exact table state that produced it.
    pub grammar_version: u64,
}

/// Sentinel for "no edge" in the pooled edge lists.
const NO_EDGE: u32 = u32::MAX;

#[derive(Clone, Copy, Debug)]
struct GssNode {
    state: StateId,
    level: usize,
    /// Head of this node's edge list in the shared pool.
    first_edge: u32,
}

#[derive(Clone, Copy, Debug)]
struct GssEdge {
    target: u32,
    /// Next edge of the same source node (`NO_EDGE` terminates).
    next: u32,
    /// The forest slice the edge spans.
    label: ForestRef,
}

/// A pending reduction: reduce `rule` from `node`, optionally restricted to
/// paths whose first edge is `via` (used when a new edge is added to an
/// already-processed node, Farshi's correction to Tomita's algorithm).
#[derive(Clone, Copy, Debug)]
struct PendingReduction {
    node: u32,
    rule: RuleId,
    via: Option<(u32, ForestRef)>,
}

/// A reusable dense `state -> GSS node` map for one input position. Lookup
/// is an array load; clearing walks only the entries actually inserted.
#[derive(Debug, Default)]
struct Frontier {
    /// `state index -> node + 1` (0 = absent).
    slots: Vec<u32>,
    /// Insertion-ordered `(state, node)` pairs for iteration and clearing.
    entries: Vec<(StateId, u32)>,
}

impl Frontier {
    #[inline]
    fn get(&self, state: StateId) -> Option<u32> {
        match self.slots.get(state.index()) {
            Some(&v) if v != 0 => Some(v - 1),
            _ => None,
        }
    }

    #[inline]
    fn insert(&mut self, state: StateId, node: u32) {
        let i = state.index();
        if i >= self.slots.len() {
            self.slots.resize(i + 1, 0);
        }
        debug_assert_eq!(self.slots[i], 0, "frontier holds one node per state");
        self.slots[i] = node + 1;
        self.entries.push((state, node));
    }

    fn clear(&mut self) {
        for &(state, _) in &self.entries {
            self.slots[state.index()] = 0;
        }
        self.entries.clear();
    }

    fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Packs a [`ForestRef`] into a hashable/dedupable key.
#[inline]
fn label_key(label: ForestRef) -> u64 {
    match label {
        ForestRef::Leaf { symbol, position } => {
            (1 << 63) | ((symbol.index() as u64) << 32) | position as u64
        }
        ForestRef::Node(node) => node.index() as u64,
    }
}

/// The graph-structured-stack parser.
#[derive(Debug)]
pub struct GssParser<'g> {
    grammar: &'g Grammar,
}

impl<'g> GssParser<'g> {
    /// Creates a parser for `grammar`.
    pub fn new(grammar: &'g Grammar) -> Self {
        GssParser { grammar }
    }

    /// Recognises `tokens` without building the parse forest (reductions
    /// still traverse the same graph-structured stack, but no forest nodes
    /// or packed derivations are allocated).
    pub fn recognize(&self, tables: &dyn ParserTables, tokens: &[SymbolId]) -> bool {
        self.run(tables, tokens, false).accepted
    }

    /// Parses `tokens`, producing the shared forest of all derivations.
    pub fn parse(&self, tables: &dyn ParserTables, tokens: &[SymbolId]) -> GssParseResult {
        self.run(tables, tokens, true)
    }

    fn run(
        &self,
        tables: &dyn ParserTables,
        tokens: &[SymbolId],
        build_forest: bool,
    ) -> GssParseResult {
        let eof = self.grammar.eof_symbol();
        let mut forest = Forest::new();
        let mut stats = GssStats::default();
        let mut accepted = false;

        let mut nodes: Vec<GssNode> = Vec::new();
        let mut edges: Vec<GssEdge> = Vec::new();
        // Edge de-duplication over the whole parse: `(from, to, label)`.
        let mut seen_edges: FxHashSet<(u32, u32, u64)> = FxHashSet::default();
        // Double-buffered frontiers for the current/next input position.
        let mut cur = Frontier::default();
        let mut next = Frontier::default();
        let mut pending: Vec<PendingReduction> = Vec::new();
        // Flat scratch for reduction-path enumeration.
        let mut path_ends: Vec<u32> = Vec::new();
        let mut path_labels: Vec<ForestRef> = Vec::new();
        let mut dfs_labels: Vec<ForestRef> = Vec::new();
        // Reusable ACTION cell: the tables fill it in place, so steady-state
        // queries against a warm (or shared, concurrently served) table do
        // not allocate.
        let mut actions = ActionCell::default();
        // Nodes in which an accept action was seen; their root edges are
        // collected at the very end, after all reductions have added edges.
        let mut accepting_nodes: Vec<u32> = Vec::new();

        let start_node = push_node(&mut nodes, &mut stats, tables.start_state(), 0);
        cur.insert(tables.start_state(), start_node);

        let n = tokens.len();
        for pos in 0..=n {
            let symbol = tokens.get(pos).copied().unwrap_or(eof);
            debug_assert!(self.grammar.is_terminal(symbol));

            // --- Reducer -------------------------------------------------
            debug_assert!(pending.is_empty());
            for i in 0..cur.entries.len() {
                let (state, node) = cur.entries[i];
                tables.actions_into(state, symbol, &mut actions);
                for &rule in &actions.reductions {
                    pending.push(PendingReduction {
                        node,
                        rule,
                        via: None,
                    });
                }
                if actions.accept && symbol == eof {
                    accepted = true;
                    accepting_nodes.push(node);
                }
            }

            while let Some(reduction) = pending.pop() {
                let rule = self.grammar.rule(reduction.rule);
                let arity = rule.rhs.len();
                if arity == 0 && reduction.via.is_some() {
                    // Epsilon reductions do not traverse edges; they were
                    // already handled when the node was created.
                    continue;
                }
                path_ends.clear();
                path_labels.clear();
                find_paths(
                    &nodes,
                    &edges,
                    reduction.node,
                    arity,
                    reduction.via,
                    &mut dfs_labels,
                    &mut path_ends,
                    &mut path_labels,
                );
                for path in 0..path_ends.len() {
                    stats.reductions += 1;
                    let target = path_ends[path];
                    let labels = &path_labels[path * arity..(path + 1) * arity];
                    let start_level = nodes[target as usize].level;
                    let Some(goto_state) = tables.goto(nodes[target as usize].state, rule.lhs)
                    else {
                        continue;
                    };
                    let label = if build_forest {
                        // Labels run from the reducing node outwards, i.e.
                        // rightmost child first; reverse them for the rule.
                        let children: Vec<ForestRef> = labels.iter().rev().copied().collect();
                        let forest_node = forest.node_for(rule.lhs, start_level, pos);
                        forest.add_derivation(forest_node, reduction.rule, children);
                        ForestRef::Node(forest_node)
                    } else {
                        // Recognition only: a cheap placeholder label that
                        // still distinguishes edges by the non-terminal and
                        // span they cover (needed for edge de-duplication).
                        ForestRef::Leaf {
                            symbol: rule.lhs,
                            position: start_level,
                        }
                    };

                    if let Some(existing) = cur.get(goto_state) {
                        if add_edge(
                            &mut nodes,
                            &mut edges,
                            &mut seen_edges,
                            &mut stats,
                            existing,
                            target,
                            label,
                        ) {
                            // Re-run the reductions of the existing node,
                            // restricted to paths through the new edge.
                            tables.actions_into(goto_state, symbol, &mut actions);
                            for &rule in &actions.reductions {
                                pending.push(PendingReduction {
                                    node: existing,
                                    rule,
                                    via: Some((target, label)),
                                });
                            }
                        }
                    } else {
                        let new_node = push_node(&mut nodes, &mut stats, goto_state, pos);
                        add_edge(
                            &mut nodes,
                            &mut edges,
                            &mut seen_edges,
                            &mut stats,
                            new_node,
                            target,
                            label,
                        );
                        cur.insert(goto_state, new_node);
                        tables.actions_into(goto_state, symbol, &mut actions);
                        for &rule in &actions.reductions {
                            pending.push(PendingReduction {
                                node: new_node,
                                rule,
                                via: None,
                            });
                        }
                        if actions.accept && symbol == eof {
                            accepted = true;
                            accepting_nodes.push(new_node);
                        }
                    }
                }
            }

            // On the last position (the end-marker) there is nothing to
            // shift; acceptance has been decided above.
            if pos == n {
                break;
            }

            // --- Shifter -------------------------------------------------
            let leaf = ForestRef::Leaf {
                symbol,
                position: pos,
            };
            for i in 0..cur.entries.len() {
                let (state, node) = cur.entries[i];
                tables.actions_into(state, symbol, &mut actions);
                if let Some(next_state) = actions.shift {
                    stats.shifts += 1;
                    let target_node = match next.get(next_state) {
                        Some(existing) => existing,
                        None => {
                            let created =
                                push_node(&mut nodes, &mut stats, next_state, pos + 1);
                            next.insert(next_state, created);
                            created
                        }
                    };
                    add_edge(
                        &mut nodes,
                        &mut edges,
                        &mut seen_edges,
                        &mut stats,
                        target_node,
                        node,
                        leaf,
                    );
                }
            }
            if next.is_empty() {
                // Every parallel parser died: the input is rejected. (The
                // accept flag can only have been set on the end-marker.)
                break;
            }
            std::mem::swap(&mut cur, &mut next);
            next.clear();
        }

        if build_forest {
            for &node in &accepting_nodes {
                record_roots(&nodes, &edges, node, start_node, &mut forest);
            }
        }

        GssParseResult {
            accepted,
            forest,
            stats,
            grammar_version: tables.grammar_version(),
        }
    }
}

fn push_node(
    nodes: &mut Vec<GssNode>,
    stats: &mut GssStats,
    state: StateId,
    level: usize,
) -> u32 {
    nodes.push(GssNode {
        state,
        level,
        first_edge: NO_EDGE,
    });
    stats.nodes += 1;
    (nodes.len() - 1) as u32
}

/// Adds the edge `from -> to` with `label` unless an identical edge exists.
/// Returns whether the edge was new.
fn add_edge(
    nodes: &mut [GssNode],
    edges: &mut Vec<GssEdge>,
    seen: &mut FxHashSet<(u32, u32, u64)>,
    stats: &mut GssStats,
    from: u32,
    to: u32,
    label: ForestRef,
) -> bool {
    if !seen.insert((from, to, label_key(label))) {
        return false;
    }
    let node = &mut nodes[from as usize];
    edges.push(GssEdge {
        target: to,
        next: node.first_edge,
        label,
    });
    node.first_edge = (edges.len() - 1) as u32;
    stats.edges += 1;
    true
}

/// When an accepting state is reached, every edge from it back to the start
/// node spans the whole input and carries a root of the forest.
fn record_roots(
    nodes: &[GssNode],
    edges: &[GssEdge],
    accepting: u32,
    start_node: u32,
    forest: &mut Forest,
) {
    let mut e = nodes[accepting as usize].first_edge;
    while e != NO_EDGE {
        let edge = edges[e as usize];
        if edge.target == start_node {
            if let ForestRef::Node(f) = edge.label {
                forest.add_root(f);
            }
        }
        e = edge.next;
    }
}

/// Enumerates all paths of exactly `arity` edges starting at `from`,
/// optionally forced to use `via` as the first edge. Results land in the
/// reusable flat buffers: `ends[i]` is the far end of path `i`, and
/// `out_labels[i*arity..(i+1)*arity]` its edge labels from the reducing
/// node outwards (rightmost child first).
#[allow(clippy::too_many_arguments)]
fn find_paths(
    nodes: &[GssNode],
    edges: &[GssEdge],
    from: u32,
    arity: usize,
    via: Option<(u32, ForestRef)>,
    dfs_labels: &mut Vec<ForestRef>,
    ends: &mut Vec<u32>,
    out_labels: &mut Vec<ForestRef>,
) {
    if arity == 0 {
        ends.push(from);
        return;
    }
    dfs_labels.clear();
    dfs_labels.resize(
        arity,
        ForestRef::Leaf {
            symbol: ipg_grammar::SymbolId::from_index(0),
            position: 0,
        },
    );
    match via {
        Some((target, label)) => {
            dfs_labels[0] = label;
            dfs(nodes, edges, target, 1, arity, dfs_labels, ends, out_labels);
        }
        None => dfs(nodes, edges, from, 0, arity, dfs_labels, ends, out_labels),
    }
}

#[allow(clippy::too_many_arguments)]
fn dfs(
    nodes: &[GssNode],
    edges: &[GssEdge],
    node: u32,
    depth: usize,
    arity: usize,
    labels: &mut Vec<ForestRef>,
    ends: &mut Vec<u32>,
    out_labels: &mut Vec<ForestRef>,
) {
    if depth == arity {
        ends.push(node);
        out_labels.extend_from_slice(labels);
        return;
    }
    let mut e = nodes[node as usize].first_edge;
    while e != NO_EDGE {
        let edge = edges[e as usize];
        labels[depth] = edge.label;
        dfs(
            nodes,
            edges,
            edge.target,
            depth + 1,
            arity,
            labels,
            ends,
            out_labels,
        );
        e = edge.next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipg_grammar::fixtures;
    use ipg_lr::{tokenize_names, Lr0Automaton, ParseTable};

    fn lr0_table(g: &Grammar) -> ParseTable {
        ParseTable::lr0(&Lr0Automaton::build(g), g)
    }

    #[test]
    fn accepts_and_rejects_boolean_sentences() {
        let g = fixtures::booleans();
        let table = lr0_table(&g);
        let parser = GssParser::new(&g);
        for (sentence, expected) in [
            ("true", true),
            ("true or false", true),
            ("true and false or true", true),
            ("", false),
            ("or true", false),
            ("true true", false),
        ] {
            let tokens = tokenize_names(&g, sentence).unwrap();
            assert_eq!(
                parser.recognize(&table, &tokens),
                expected,
                "sentence `{sentence}`"
            );
        }
    }

    #[test]
    fn unambiguous_sentence_yields_single_tree() {
        let g = fixtures::booleans();
        let table = lr0_table(&g);
        let parser = GssParser::new(&g);
        let tokens = tokenize_names(&g, "true or false").unwrap();
        let result = parser.parse(&table, &tokens);
        assert!(result.accepted);
        assert_eq!(result.forest.tree_count(100), 1);
        let tree = result.forest.first_tree().unwrap();
        assert_eq!(tree.to_sexpr(&g), "(B (B true) or (B false))");
    }

    #[test]
    fn ambiguous_sentence_packs_multiple_trees() {
        // `true or true or true` has exactly 2 parses (left- or
        // right-nested `or`).
        let g = fixtures::booleans();
        let table = lr0_table(&g);
        let parser = GssParser::new(&g);
        let tokens = tokenize_names(&g, "true or true or true").unwrap();
        let result = parser.parse(&table, &tokens);
        assert!(result.accepted);
        assert!(result.forest.is_ambiguous());
        assert_eq!(result.forest.tree_count(100), 2);
        let trees = result.forest.trees(10);
        assert_eq!(trees.len(), 2);
        for t in &trees {
            assert_eq!(t.leaf_count(), 5);
        }
    }

    #[test]
    fn ambiguity_grows_with_catalan_numbers() {
        // n operators => Catalan(n) parses: 1, 2, 5, 14 ...
        let g = fixtures::ambiguous_expressions();
        let table = lr0_table(&g);
        let parser = GssParser::new(&g);
        for (ops, expected) in [(1usize, 1usize), (2, 2), (3, 5), (4, 14)] {
            let mut sentence = String::from("id");
            for _ in 0..ops {
                sentence.push_str(" + id");
            }
            let tokens = tokenize_names(&g, &sentence).unwrap();
            let result = parser.parse(&table, &tokens);
            assert!(result.accepted);
            assert_eq!(
                result.forest.tree_count(1000),
                expected,
                "number of parses of `{sentence}`"
            );
        }
    }

    #[test]
    fn palindrome_grammar_with_epsilon_rules() {
        let g = fixtures::palindromes();
        let table = lr0_table(&g);
        let parser = GssParser::new(&g);
        for (sentence, expected) in [
            ("", true),
            ("a", true),
            ("a b a", true),
            ("a b b a", true),
            ("a b", false),
        ] {
            let tokens = tokenize_names(&g, sentence).unwrap();
            assert_eq!(
                parser.recognize(&table, &tokens),
                expected,
                "sentence `{sentence}`"
            );
        }
    }

    #[test]
    fn gss_and_pool_agree() {
        let g = fixtures::booleans();
        let table = lr0_table(&g);
        let gss = GssParser::new(&g);
        let pool = crate::pool::PoolGlrParser::new(&g);
        for sentence in [
            "true",
            "true or false and true or true",
            "true and and",
            "false or",
            "true or true and true or false",
        ] {
            let tokens = tokenize_names(&g, sentence).unwrap();
            assert_eq!(
                gss.recognize(&table, &tokens),
                pool.recognize(&table, &tokens).unwrap(),
                "sentence `{sentence}`"
            );
        }
    }

    #[test]
    fn forest_fringe_matches_input() {
        let g = fixtures::ambiguous_expressions();
        let table = lr0_table(&g);
        let parser = GssParser::new(&g);
        let tokens = tokenize_names(&g, "id + id * id").unwrap();
        let result = parser.parse(&table, &tokens);
        for tree in result.forest.trees(100) {
            assert_eq!(tree.fringe(), tokens);
        }
    }

    #[test]
    fn stats_are_populated() {
        let g = fixtures::booleans();
        let table = lr0_table(&g);
        let parser = GssParser::new(&g);
        let tokens = tokenize_names(&g, "true or true or true").unwrap();
        let result = parser.parse(&table, &tokens);
        assert!(result.stats.nodes > 0);
        assert!(result.stats.edges >= result.stats.nodes - 1);
        assert!(result.stats.shifts >= tokens.len());
        assert!(result.stats.reductions > 0);
    }

    #[test]
    fn rejected_input_produces_empty_forest() {
        let g = fixtures::booleans();
        let table = lr0_table(&g);
        let parser = GssParser::new(&g);
        let tokens = tokenize_names(&g, "true or").unwrap();
        let result = parser.parse(&table, &tokens);
        assert!(!result.accepted);
        assert!(result.forest.roots().is_empty());
        assert!(result.forest.first_tree().is_none());
    }

    use ipg_grammar::Grammar;
}
