//! Streaming token sources: the input side of lexer→parser fusion.
//!
//! The GSS driver consumes its input one terminal at a time and never
//! looks back, so it does not need the whole token stream in memory — it
//! needs a *source* it can pull the next terminal from. [`TokenSource`]
//! captures exactly that. A pre-lexed in-memory sentence is a source
//! ([`SliceTokens`]); so is a scanner running over raw text, which is how
//! the serving layer's `parse_text` avoids materialising a token vector
//! per request: the scanner's next match feeds the parser's next step
//! directly, with the scan error (if any) surfacing through the source's
//! error type.

use ipg_grammar::SymbolId;

/// A pull-based stream of terminal symbols ending in end-of-input.
///
/// `Err` aborts the parse (a lexical error in fused scanning); `Ok(None)`
/// is end-of-input, after which the parser decides acceptance on the
/// grammar's end-marker. Sources are consumed left to right exactly once —
/// the parser never rewinds — and may stop being polled early when every
/// parallel parser dies (so a fused scanner is only run over the prefix
/// the parse actually reached).
pub trait TokenSource {
    /// The error a pull can fail with ([`std::convert::Infallible`] for
    /// in-memory sources).
    type Error;

    /// The next terminal, `Ok(None)` at end-of-input.
    fn next_token(&mut self) -> Result<Option<SymbolId>, Self::Error>;
}

/// A [`TokenSource`] over a pre-lexed in-memory sentence.
#[derive(Clone, Copy, Debug)]
pub struct SliceTokens<'a> {
    tokens: &'a [SymbolId],
    pos: usize,
}

impl<'a> SliceTokens<'a> {
    /// Wraps a token slice.
    pub fn new(tokens: &'a [SymbolId]) -> Self {
        SliceTokens { tokens, pos: 0 }
    }
}

impl TokenSource for SliceTokens<'_> {
    type Error = std::convert::Infallible;

    #[inline]
    fn next_token(&mut self) -> Result<Option<SymbolId>, Self::Error> {
        let token = self.tokens.get(self.pos).copied();
        self.pos += 1;
        Ok(token)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipg_grammar::SymbolId;

    #[test]
    fn slice_source_yields_tokens_then_none() {
        let tokens = [SymbolId::from_index(3), SymbolId::from_index(5)];
        let mut source = SliceTokens::new(&tokens);
        assert_eq!(source.next_token(), Ok(Some(tokens[0])));
        assert_eq!(source.next_token(), Ok(Some(tokens[1])));
        assert_eq!(source.next_token(), Ok(None));
        assert_eq!(source.next_token(), Ok(None));
    }
}
