//! Per-request resource budgets for cooperative mid-parse cancellation.
//!
//! A [`ParseBudget`] caps how much work a single parse may do before it is
//! cut off: a wall-clock deadline, a step-fuel limit (reductions + shifts +
//! tokens), and byte caps on the two growable per-request arenas (the GSS
//! node/edge pools and the shared packed forest). The GSS `run` loop and the
//! fused token source consult the budget through a [`BudgetGuard`], which
//! amortizes the check over a stride of work units so the warm zero-alloc
//! path stays branch-cheap: an unlimited budget costs one increment and one
//! always-false compare per work unit, and `Instant::now` is only called on
//! the (rare) stride boundary of a limited budget.
//!
//! Exhaustion is cooperative, not preemptive: the parse observes the budget
//! at the next stride boundary and returns
//! [`ParseOutcome::Exhausted`](crate::ParseOutcome) with the first
//! [`ExhaustReason`] that tripped. Callers decide what to do with the
//! partially grown context — the server quarantines it instead of recycling
//! it, since a byte-cap kill means the pools ballooned to the cap.

use std::time::Instant;

/// How many work units (reductions + shifts + tokens) pass between budget
/// checks. Small enough that a deadline overshoots by at most a few
/// microseconds of GSS work, large enough that `Instant::now` and the byte
/// arithmetic disappear from profiles.
pub const BUDGET_CHECK_STRIDE: u64 = 64;

/// Why a parse was cut off mid-flight.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ExhaustReason {
    /// The wall-clock deadline passed while the parse was running.
    Deadline,
    /// The step-fuel limit (reductions + shifts + tokens) was spent.
    Fuel,
    /// The GSS node/edge pools grew past the byte cap.
    GssBytes,
    /// The shared packed forest arena grew past the byte cap.
    ForestBytes,
}

impl ExhaustReason {
    /// Stable lower-case name, used in wire error payloads and stats dumps.
    pub fn as_str(self) -> &'static str {
        match self {
            ExhaustReason::Deadline => "deadline",
            ExhaustReason::Fuel => "fuel",
            ExhaustReason::GssBytes => "gss-bytes",
            ExhaustReason::ForestBytes => "forest-bytes",
        }
    }
}

impl std::fmt::Display for ExhaustReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Resource limits for one parse. `Default` is unlimited on every axis.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ParseBudget {
    /// Hard wall-clock cutoff; the parse bails at the first stride boundary
    /// past this instant.
    pub deadline: Option<Instant>,
    /// Maximum work units (reductions + shifts + tokens consumed).
    pub fuel: Option<u64>,
    /// Byte cap on the GSS node + edge pools.
    pub max_gss_bytes: Option<usize>,
    /// Byte cap on the forest arena (nodes + derivations + child slots).
    pub max_forest_bytes: Option<usize>,
}

impl ParseBudget {
    /// A budget with no limits — the guard compiles down to a counter bump.
    pub const UNLIMITED: ParseBudget = ParseBudget {
        deadline: None,
        fuel: None,
        max_gss_bytes: None,
        max_forest_bytes: None,
    };

    /// True when no axis is limited.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none()
            && self.fuel.is_none()
            && self.max_gss_bytes.is_none()
            && self.max_forest_bytes.is_none()
    }

    /// Sets the wall-clock deadline.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the step-fuel limit.
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel = Some(fuel);
        self
    }

    /// Sets the GSS pool byte cap.
    pub fn with_max_gss_bytes(mut self, bytes: usize) -> Self {
        self.max_gss_bytes = Some(bytes);
        self
    }

    /// Sets the forest arena byte cap.
    pub fn with_max_forest_bytes(mut self, bytes: usize) -> Self {
        self.max_forest_bytes = Some(bytes);
        self
    }

    /// Tightens the deadline to `deadline` if it is earlier than (or the
    /// only) one already set. `None` leaves the budget unchanged.
    pub fn tightened_deadline(mut self, deadline: Option<Instant>) -> Self {
        self.deadline = match (self.deadline, deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self
    }

    /// Combines two budgets, keeping the tightest limit on each axis.
    pub fn merged(self, other: ParseBudget) -> ParseBudget {
        fn tighter<T: Ord>(a: Option<T>, b: Option<T>) -> Option<T> {
            match (a, b) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            }
        }
        ParseBudget {
            deadline: tighter(self.deadline, other.deadline),
            fuel: tighter(self.fuel, other.fuel),
            max_gss_bytes: tighter(self.max_gss_bytes, other.max_gss_bytes),
            max_forest_bytes: tighter(self.max_forest_bytes, other.max_forest_bytes),
        }
    }

    /// Full (unamortized) check against current resource usage. Returns the
    /// first limit that tripped, in a fixed priority order (deadline, fuel,
    /// GSS bytes, forest bytes) so exhaustion reasons are deterministic for
    /// byte/fuel caps under identical inputs.
    pub fn check(
        &self,
        work: u64,
        gss_bytes: usize,
        forest_bytes: usize,
    ) -> Option<ExhaustReason> {
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Some(ExhaustReason::Deadline);
            }
        }
        if let Some(fuel) = self.fuel {
            if work > fuel {
                return Some(ExhaustReason::Fuel);
            }
        }
        if let Some(cap) = self.max_gss_bytes {
            if gss_bytes > cap {
                return Some(ExhaustReason::GssBytes);
            }
        }
        if let Some(cap) = self.max_forest_bytes {
            if forest_bytes > cap {
                return Some(ExhaustReason::ForestBytes);
            }
        }
        None
    }
}

/// Amortized budget checker for the GSS hot loop.
///
/// Call [`step`](BudgetGuard::step) once per work unit with closures that
/// compute the current pool sizes; the closures are only invoked on stride
/// boundaries of a limited budget. An unlimited guard sets its next check
/// point to `u64::MAX`, so `step` is an increment and a never-taken branch.
#[derive(Clone, Copy, Debug)]
pub struct BudgetGuard {
    budget: ParseBudget,
    work: u64,
    next_check: u64,
}

impl BudgetGuard {
    /// Builds a guard over `budget`.
    pub fn new(budget: ParseBudget) -> Self {
        let next_check = if budget.is_unlimited() {
            u64::MAX
        } else {
            BUDGET_CHECK_STRIDE
        };
        BudgetGuard {
            budget,
            work: 0,
            next_check,
        }
    }

    /// Records `n` work units without checking; use for bulk counts (e.g. a
    /// batch of reduction paths) between `step` calls.
    #[inline(always)]
    pub fn add(&mut self, n: u64) {
        self.work += n;
    }

    /// Records one work unit; on a stride boundary of a limited budget,
    /// performs the full check. Returns the exhaustion reason if any limit
    /// tripped.
    #[inline(always)]
    pub fn step(
        &mut self,
        gss_bytes: impl FnOnce() -> usize,
        forest_bytes: impl FnOnce() -> usize,
    ) -> Option<ExhaustReason> {
        self.work += 1;
        if self.work < self.next_check {
            return None;
        }
        self.check_now(gss_bytes, forest_bytes)
    }

    /// The stride-boundary slow path: runs the full check and schedules the
    /// next boundary.
    #[cold]
    fn check_now(
        &mut self,
        gss_bytes: impl FnOnce() -> usize,
        forest_bytes: impl FnOnce() -> usize,
    ) -> Option<ExhaustReason> {
        self.next_check = self.work.saturating_add(BUDGET_CHECK_STRIDE);
        self.budget.check(self.work, gss_bytes(), forest_bytes())
    }

    /// Work units recorded so far.
    pub fn work(&self) -> u64 {
        self.work
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn unlimited_budget_never_trips() {
        let mut guard = BudgetGuard::new(ParseBudget::UNLIMITED);
        for _ in 0..10_000 {
            assert_eq!(guard.step(|| usize::MAX, || usize::MAX), None);
        }
        assert_eq!(guard.work(), 10_000);
    }

    #[test]
    fn fuel_trips_at_stride_boundary() {
        let budget = ParseBudget::default().with_fuel(10);
        let mut guard = BudgetGuard::new(budget);
        let mut tripped_at = None;
        for i in 1..=10 * BUDGET_CHECK_STRIDE {
            if guard.step(|| 0, || 0).is_some() {
                tripped_at = Some(i);
                break;
            }
        }
        // Fuel 10 < stride, so the very first boundary reports exhaustion.
        assert_eq!(tripped_at, Some(BUDGET_CHECK_STRIDE));
    }

    #[test]
    fn byte_caps_trip_with_reason_priority() {
        let budget = ParseBudget::default()
            .with_max_gss_bytes(100)
            .with_max_forest_bytes(100);
        // Both over: GSS wins by priority order.
        assert_eq!(budget.check(0, 101, 101), Some(ExhaustReason::GssBytes));
        assert_eq!(budget.check(0, 100, 101), Some(ExhaustReason::ForestBytes));
        assert_eq!(budget.check(0, 100, 100), None);
    }

    #[test]
    fn expired_deadline_trips() {
        let budget = ParseBudget::default().with_deadline(Instant::now() - Duration::from_secs(1));
        assert_eq!(budget.check(0, 0, 0), Some(ExhaustReason::Deadline));
        let future = ParseBudget::default().with_deadline(Instant::now() + Duration::from_secs(60));
        assert_eq!(future.check(0, 0, 0), None);
    }

    #[test]
    fn merged_keeps_tightest_limits() {
        let now = Instant::now();
        let a = ParseBudget::default()
            .with_deadline(now + Duration::from_secs(5))
            .with_fuel(1000);
        let b = ParseBudget::default()
            .with_deadline(now + Duration::from_secs(1))
            .with_max_gss_bytes(4096);
        let m = a.merged(b);
        assert_eq!(m.deadline, Some(now + Duration::from_secs(1)));
        assert_eq!(m.fuel, Some(1000));
        assert_eq!(m.max_gss_bytes, Some(4096));
        assert_eq!(m.max_forest_bytes, None);
        assert!(ParseBudget::UNLIMITED.merged(ParseBudget::UNLIMITED).is_unlimited());
    }

    #[test]
    fn tightened_deadline_prefers_earlier() {
        let now = Instant::now();
        let early = now + Duration::from_secs(1);
        let late = now + Duration::from_secs(9);
        let b = ParseBudget::default().with_deadline(late);
        assert_eq!(b.tightened_deadline(Some(early)).deadline, Some(early));
        assert_eq!(b.tightened_deadline(None).deadline, Some(late));
        let none = ParseBudget::default();
        assert_eq!(none.tightened_deadline(Some(early)).deadline, Some(early));
    }
}
