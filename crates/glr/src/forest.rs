//! Shared parse forests.
//!
//! The parallel parser may find several derivations for (parts of) the
//! input when the grammar is ambiguous. Instead of materialising every
//! parse tree, derivations are packed into a *shared forest*: one node per
//! `(non-terminal, start, end)` span, carrying every rule application that
//! derives that span. This is the "improved sharing of parse trees" the
//! paper mentions it adopted after a suggestion of B. Lang.
//!
//! ## Arena layout
//!
//! The forest is a set of flat pools — nodes, packed derivations and
//! derivation children each live in one `Vec`, and a node's derivations
//! form an insertion-ordered linked list through the derivation pool.
//! Nothing is allocated per node or per derivation, so a forest that is
//! [`Forest::clear`]ed and rebuilt (the serving layer's reusable parse
//! contexts do exactly this) performs **zero heap allocations** once its
//! pools have warmed up to the workload's size.

use std::collections::HashMap;

use ipg_grammar::{Grammar, RuleId, SymbolId};
use ipg_lr::ParseTree;

use crate::fxhash::FxHashMap;

/// Identifier of a non-terminal node in a [`Forest`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(u32);

impl NodeId {
    /// Raw index of the node inside its forest.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A child of a derivation: either an input token or another forest node.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ForestRef {
    /// A terminal leaf (token) at the given input position.
    Leaf {
        /// Terminal symbol.
        symbol: SymbolId,
        /// 0-based token index.
        position: usize,
    },
    /// A shared non-terminal node.
    Node(NodeId),
}

/// A borrowed view of one way of deriving a forest node: a rule plus its
/// children, read straight out of the forest's flat pools.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Derivation<'f> {
    /// The rule that was reduced.
    pub rule: RuleId,
    /// Children, left to right; length equals the rule's right-hand side.
    pub children: &'f [ForestRef],
}

/// Sentinel for "no derivation" in the pooled derivation lists.
const NO_DERIVATION: u32 = u32::MAX;

/// One packed derivation in the pool: a rule, a slice of the shared
/// children pool, and the next derivation of the same node.
#[derive(Clone, Copy, Debug)]
struct DerivationSlot {
    rule: RuleId,
    children_start: u32,
    children_len: u32,
    /// Next derivation of the same node (`NO_DERIVATION` terminates).
    next: u32,
}

/// A non-terminal node: a `(symbol, start, end)` span with one or more
/// packed derivations (stored in the forest's derivation pool).
#[derive(Clone, Debug)]
pub struct ForestNode {
    /// The non-terminal this node derives.
    pub symbol: SymbolId,
    /// Start token index (inclusive).
    pub start: usize,
    /// End token index (exclusive).
    pub end: usize,
    /// Head of this node's derivation list in the pool.
    first_derivation: u32,
    /// Tail of the list (derivations keep insertion order).
    last_derivation: u32,
}

/// A shared packed parse forest.
#[derive(Clone, Debug, Default)]
pub struct Forest {
    nodes: Vec<ForestNode>,
    /// Packed derivations of all nodes (per-node linked lists).
    derivations: Vec<DerivationSlot>,
    /// Children of all derivations, in one flat pool.
    children: Vec<ForestRef>,
    /// Span interning map; on the parse hot path, hence the fast hasher.
    index: FxHashMap<(SymbolId, usize, usize), NodeId>,
    roots: Vec<NodeId>,
}

impl Forest {
    /// Creates an empty forest.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empties the forest while keeping the capacity of all its pools —
    /// the reusable-parse-context reset. A cleared forest rebuilt to the
    /// same shape allocates nothing.
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.derivations.clear();
        self.children.clear();
        self.index.clear();
        self.roots.clear();
    }

    /// Finds or creates the node for `(symbol, start, end)`.
    pub fn node_for(&mut self, symbol: SymbolId, start: usize, end: usize) -> NodeId {
        if let Some(&id) = self.index.get(&(symbol, start, end)) {
            return id;
        }
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(ForestNode {
            symbol,
            start,
            end,
            first_derivation: NO_DERIVATION,
            last_derivation: NO_DERIVATION,
        });
        self.index.insert((symbol, start, end), id);
        id
    }

    /// Adds a derivation to a node, packing duplicates away. The children
    /// are copied into the forest's flat pool, so the caller can reuse its
    /// scratch buffer.
    pub fn add_derivation(&mut self, node: NodeId, rule: RuleId, children: &[ForestRef]) {
        // Duplicate check: walk the node's (almost always tiny) list.
        let mut d = self.nodes[node.index()].first_derivation;
        while d != NO_DERIVATION {
            let slot = self.derivations[d as usize];
            if slot.rule == rule && self.children_of(slot) == children {
                return;
            }
            d = slot.next;
        }
        let children_start = self.children.len() as u32;
        self.children.extend_from_slice(children);
        let new = self.derivations.len() as u32;
        self.derivations.push(DerivationSlot {
            rule,
            children_start,
            children_len: children.len() as u32,
            next: NO_DERIVATION,
        });
        let entry = &mut self.nodes[node.index()];
        if entry.first_derivation == NO_DERIVATION {
            entry.first_derivation = new;
        } else {
            self.derivations[entry.last_derivation as usize].next = new;
        }
        entry.last_derivation = new;
    }

    #[inline]
    fn children_of(&self, slot: DerivationSlot) -> &[ForestRef] {
        let start = slot.children_start as usize;
        &self.children[start..start + slot.children_len as usize]
    }

    /// Marks a node as a root (a derivation of the whole sentence).
    pub fn add_root(&mut self, node: NodeId) {
        if !self.roots.contains(&node) {
            self.roots.push(node);
        }
    }

    /// The root nodes (derivations of the full input). Empty if the input
    /// was rejected.
    pub fn roots(&self) -> &[NodeId] {
        &self.roots
    }

    /// Returns a node.
    pub fn node(&self, id: NodeId) -> &ForestNode {
        &self.nodes[id.index()]
    }

    /// Iterates over the packed derivations of a node, in insertion order.
    pub fn derivations(&self, id: NodeId) -> Derivations<'_> {
        Derivations {
            forest: self,
            next: self.nodes[id.index()].first_derivation,
        }
    }

    /// Number of non-terminal nodes in the forest.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Total number of packed derivations.
    pub fn num_derivations(&self) -> usize {
        self.derivations.len()
    }

    /// Total number of derivation children across all packed derivations
    /// (the length of the flat children pool — a watermark for
    /// checkpoint/rollback, alongside [`Forest::num_nodes`] and
    /// [`Forest::num_derivations`]).
    pub fn num_children(&self) -> usize {
        self.children.len()
    }

    /// Approximate resident size of the forest arena in bytes: the three
    /// flat pools (nodes, derivation slots, child refs) at their current
    /// lengths. O(1) — cheap enough for an amortized budget check — and
    /// deliberately ignores `Vec` over-capacity and the span index, so it
    /// tracks *parse-driven growth* rather than allocator round-up.
    pub fn approx_bytes(&self) -> usize {
        self.nodes.len() * std::mem::size_of::<ForestNode>()
            + self.derivations.len() * std::mem::size_of::<DerivationSlot>()
            + self.children.len() * std::mem::size_of::<ForestRef>()
    }

    /// Rolls the forest back to an earlier watermark: keeps the first
    /// `nodes` nodes, `derivations` derivation slots and `children` child
    /// entries, un-interning the spans of every dropped node and clearing
    /// the roots (which describe a complete parse and are re-recorded when
    /// the parse that rolled back finishes again).
    ///
    /// Sound only for watermarks taken at a GSS checkpoint: the driver
    /// creates every derivation at the token position its node *ends* at,
    /// so all data beyond a per-position watermark belongs to dropped
    /// nodes — retained nodes never reference dropped slots.
    pub fn truncate(&mut self, nodes: usize, derivations: usize, children: usize) {
        for node in self.nodes.drain(nodes..) {
            self.index.remove(&(node.symbol, node.start, node.end));
        }
        self.derivations.truncate(derivations);
        self.children.truncate(children);
        self.roots.clear();
    }

    /// `true` if any node has more than one derivation (the sentence or a
    /// part of it is ambiguous).
    pub fn is_ambiguous(&self) -> bool {
        self.roots.len() > 1
            || self
                .nodes
                .iter()
                .any(|n| n.first_derivation != NO_DERIVATION && n.first_derivation != n.last_derivation)
    }

    /// Counts the number of distinct parse trees of the whole sentence,
    /// saturating at `limit` (ambiguity can be exponential). Cyclic
    /// derivations (possible with cyclic grammars) also saturate.
    pub fn tree_count(&self, limit: usize) -> usize {
        let mut memo: HashMap<NodeId, usize> = HashMap::new();
        let mut in_progress = vec![false; self.nodes.len()];
        let mut total = 0usize;
        for &root in &self.roots {
            total = total.saturating_add(self.count_node(root, limit, &mut memo, &mut in_progress));
            if total >= limit {
                return limit;
            }
        }
        total.min(limit)
    }

    fn count_node(
        &self,
        id: NodeId,
        limit: usize,
        memo: &mut HashMap<NodeId, usize>,
        in_progress: &mut [bool],
    ) -> usize {
        if let Some(&c) = memo.get(&id) {
            return c;
        }
        if in_progress[id.index()] {
            // Cycle: infinitely many trees; saturate.
            return limit;
        }
        in_progress[id.index()] = true;
        let mut count = 0usize;
        for derivation in self.derivations(id) {
            let mut per_derivation = 1usize;
            for child in derivation.children {
                if let ForestRef::Node(n) = child {
                    per_derivation = per_derivation
                        .saturating_mul(self.count_node(*n, limit, memo, in_progress));
                    if per_derivation >= limit {
                        per_derivation = limit;
                        break;
                    }
                }
            }
            count = count.saturating_add(per_derivation);
            if count >= limit {
                count = limit;
                break;
            }
        }
        in_progress[id.index()] = false;
        memo.insert(id, count);
        count
    }

    /// Extracts one parse tree (the first derivation everywhere). Returns
    /// `None` if the forest has no root.
    pub fn first_tree(&self) -> Option<ParseTree> {
        let &root = self.roots.first()?;
        Some(self.build_tree(root, &mut 0))
    }

    fn build_tree(&self, id: NodeId, depth_guard: &mut usize) -> ParseTree {
        *depth_guard += 1;
        let derivation = self
            .derivations(id)
            .next()
            .expect("forest nodes reachable from a root always have a derivation");
        ParseTree::Node {
            rule: derivation.rule,
            children: derivation
                .children
                .iter()
                .map(|c| match c {
                    ForestRef::Leaf { symbol, position } => ParseTree::Leaf {
                        symbol: *symbol,
                        position: *position,
                    },
                    ForestRef::Node(n) => self.build_tree(*n, depth_guard),
                })
                .collect(),
        }
    }

    /// Enumerates up to `limit` complete parse trees of the sentence.
    pub fn trees(&self, limit: usize) -> Vec<ParseTree> {
        let mut out = Vec::new();
        for &root in &self.roots {
            self.enumerate(root, limit, &mut out, &mut Vec::new());
            if out.len() >= limit {
                break;
            }
        }
        out.truncate(limit);
        out
    }

    fn enumerate(
        &self,
        id: NodeId,
        limit: usize,
        out: &mut Vec<ParseTree>,
        visiting: &mut Vec<NodeId>,
    ) {
        let trees = self.trees_of_node(id, limit, visiting);
        out.extend(trees);
    }

    fn trees_of_node(&self, id: NodeId, limit: usize, visiting: &mut Vec<NodeId>) -> Vec<ParseTree> {
        if visiting.contains(&id) {
            // Break cycles: a cyclic derivation contributes no finite tree.
            return Vec::new();
        }
        visiting.push(id);
        let mut results = Vec::new();
        'derivations: for derivation in self.derivations(id) {
            // Cartesian product of children alternatives, bounded by limit.
            let mut partials: Vec<Vec<ParseTree>> = vec![Vec::new()];
            for child in derivation.children {
                let child_trees = match child {
                    ForestRef::Leaf { symbol, position } => vec![ParseTree::Leaf {
                        symbol: *symbol,
                        position: *position,
                    }],
                    ForestRef::Node(n) => self.trees_of_node(*n, limit, visiting),
                };
                if child_trees.is_empty() && matches!(child, ForestRef::Node(_)) {
                    continue 'derivations;
                }
                let mut next = Vec::new();
                for prefix in &partials {
                    for t in &child_trees {
                        let mut p = prefix.clone();
                        p.push(t.clone());
                        next.push(p);
                        if next.len() >= limit {
                            break;
                        }
                    }
                    if next.len() >= limit {
                        break;
                    }
                }
                partials = next;
            }
            for children in partials {
                results.push(ParseTree::Node {
                    rule: derivation.rule,
                    children,
                });
                if results.len() >= limit {
                    break;
                }
            }
            if results.len() >= limit {
                break;
            }
        }
        visiting.pop();
        results
    }

    /// Renders a summary of the forest (node count, root count, ambiguity).
    pub fn summary(&self, grammar: &Grammar) -> String {
        format!(
            "forest: {} nodes, {} derivations, {} root(s), ambiguous: {}, root symbol(s): {}",
            self.num_nodes(),
            self.num_derivations(),
            self.roots.len(),
            self.is_ambiguous(),
            self.roots
                .iter()
                .map(|&r| grammar.name(self.node(r).symbol).to_owned())
                .collect::<Vec<_>>()
                .join(", ")
        )
    }
}

/// Iterator over the packed derivations of one forest node.
#[derive(Clone, Debug)]
pub struct Derivations<'f> {
    forest: &'f Forest,
    next: u32,
}

impl<'f> Iterator for Derivations<'f> {
    type Item = Derivation<'f>;

    fn next(&mut self) -> Option<Derivation<'f>> {
        if self.next == NO_DERIVATION {
            return None;
        }
        let slot = self.forest.derivations[self.next as usize];
        self.next = slot.next;
        Some(Derivation {
            rule: slot.rule,
            children: self.forest.children_of(slot),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipg_grammar::fixtures;

    use ipg_grammar::Grammar;

    /// Builds by hand the forest for `true or false` (unambiguous).
    fn simple_forest() -> (Grammar, Forest) {
        let g = fixtures::booleans();
        let b = g.symbol("B").unwrap();
        let t = g.symbol("true").unwrap();
        let f = g.symbol("false").unwrap();
        let or = g.symbol("or").unwrap();
        let r_true = g.find_rule(b, &[t]).unwrap();
        let r_false = g.find_rule(b, &[f]).unwrap();
        let r_or = g.find_rule(b, &[b, or, b]).unwrap();

        let mut forest = Forest::new();
        let n_true = forest.node_for(b, 0, 1);
        forest.add_derivation(n_true, r_true, &[ForestRef::Leaf { symbol: t, position: 0 }]);
        let n_false = forest.node_for(b, 2, 3);
        forest.add_derivation(n_false, r_false, &[ForestRef::Leaf { symbol: f, position: 2 }]);
        let n_root = forest.node_for(b, 0, 3);
        forest.add_derivation(
            n_root,
            r_or,
            &[
                ForestRef::Node(n_true),
                ForestRef::Leaf { symbol: or, position: 1 },
                ForestRef::Node(n_false),
            ],
        );
        forest.add_root(n_root);
        (g, forest)
    }

    #[test]
    fn node_sharing_by_span() {
        let (g, mut forest) = simple_forest();
        let b = g.symbol("B").unwrap();
        let again = forest.node_for(b, 0, 1);
        assert_eq!(forest.num_nodes(), 3);
        assert_eq!(forest.node(again).start, 0);
    }

    #[test]
    fn unambiguous_forest_counts_one_tree() {
        let (_, forest) = simple_forest();
        assert!(!forest.is_ambiguous());
        assert_eq!(forest.tree_count(100), 1);
        assert_eq!(forest.trees(10).len(), 1);
    }

    #[test]
    fn first_tree_matches_expected_shape() {
        let (g, forest) = simple_forest();
        let tree = forest.first_tree().unwrap();
        assert_eq!(tree.to_sexpr(&g), "(B (B true) or (B false))");
        assert_eq!(tree.leaf_count(), 3);
    }

    #[test]
    fn duplicate_derivations_are_packed() {
        let (g, mut forest) = simple_forest();
        let b = g.symbol("B").unwrap();
        let t = g.symbol("true").unwrap();
        let r_true = g.find_rule(b, &[t]).unwrap();
        let n = forest.node_for(b, 0, 1);
        let before = forest.num_derivations();
        forest.add_derivation(n, r_true, &[ForestRef::Leaf { symbol: t, position: 0 }]);
        assert_eq!(forest.num_derivations(), before);
    }

    #[test]
    fn ambiguity_is_detected_and_counted() {
        // Two derivations of the root span -> 2 trees.
        let (g, mut forest) = simple_forest();
        let b = g.symbol("B").unwrap();
        let and = g.symbol("and").unwrap();
        let r_and = g.find_rule(b, &[b, and, b]).unwrap();
        let n_true = forest.node_for(b, 0, 1);
        let n_false = forest.node_for(b, 2, 3);
        let root = forest.node_for(b, 0, 3);
        forest.add_derivation(
            root,
            r_and,
            &[
                ForestRef::Node(n_true),
                ForestRef::Leaf { symbol: and, position: 1 },
                ForestRef::Node(n_false),
            ],
        );
        assert!(forest.is_ambiguous());
        assert_eq!(forest.tree_count(100), 2);
        assert_eq!(forest.trees(100).len(), 2);
        assert_eq!(forest.trees(1).len(), 1, "enumeration respects the limit");
        let summary = forest.summary(&g);
        assert!(summary.contains("ambiguous: true"));
    }

    #[test]
    fn derivations_iterate_in_insertion_order() {
        let (g, mut forest) = simple_forest();
        let b = g.symbol("B").unwrap();
        let and = g.symbol("and").unwrap();
        let t = g.symbol("true").unwrap();
        let r_and = g.find_rule(b, &[b, and, b]).unwrap();
        let r_true = g.find_rule(b, &[t]).unwrap();
        let root = forest.roots()[0];
        let n_true = forest.node_for(b, 0, 1);
        forest.add_derivation(
            root,
            r_and,
            &[
                ForestRef::Node(n_true),
                ForestRef::Leaf { symbol: and, position: 1 },
                ForestRef::Node(n_true),
            ],
        );
        let rules: Vec<_> = forest.derivations(root).map(|d| d.rule).collect();
        // The `or` derivation was added first and stays first (first_tree
        // depends on this order being stable).
        assert_eq!(rules.len(), 2);
        assert_eq!(rules[1], r_and);
        assert_ne!(rules[0], rules[1]);
        assert_eq!(forest.derivations(n_true).next().unwrap().rule, r_true);
    }

    #[test]
    fn clear_keeps_capacity_and_resets_content() {
        let (g, mut forest) = simple_forest();
        assert!(forest.num_nodes() > 0);
        forest.clear();
        assert_eq!(forest.num_nodes(), 0);
        assert_eq!(forest.num_derivations(), 0);
        assert!(forest.roots().is_empty());
        assert!(forest.first_tree().is_none());
        // The span index was cleared too: re-interning starts fresh.
        let b = g.symbol("B").unwrap();
        let n = forest.node_for(b, 0, 1);
        assert_eq!(n.index(), 0);
    }

    #[test]
    fn empty_forest_has_no_trees() {
        let forest = Forest::new();
        assert!(forest.first_tree().is_none());
        assert_eq!(forest.tree_count(10), 0);
        assert!(forest.trees(10).is_empty());
        assert!(!forest.is_ambiguous());
    }
}
