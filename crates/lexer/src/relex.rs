//! Bounded incremental re-lexing with token-boundary resynchronisation.
//!
//! A document session keeps one [`MatchRec`] per lexed match (layout and
//! token alike), tiling the text. Each record carries the DFA's *examined
//! extent* — one past the last character the automaton read while deciding
//! that match (see `LazyDfa::longest_match_pinned_examined`). An edit can
//! only change matches whose examined extent reaches it, so the damage
//! start is found by binary search on the running maximum of the extents,
//! and re-lexing runs forward from there only until the new token
//! boundaries re-align with the old ones (a second binary search per
//! attempted position). Everything before the damage is kept verbatim;
//! everything after the resynchronisation point is kept shifted. The
//! result is bit-identical to a cold scan of the edited text, which the
//! equivalence tests assert record-for-record.

use std::sync::Arc;

use crate::dfa::DfaSnapshot;
use crate::nfa::TokenId;
use crate::scanner::{ScanError, Scanner};

/// One lexed match (token or layout) with the bookkeeping incremental
/// re-lexing needs. Records tile the text: each starts where the previous
/// one ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MatchRec {
    /// The token-id slot the match hit.
    pub slot: TokenId,
    /// Whether the slot is a layout definition (whitespace/comments —
    /// lexed but not fed to the parser).
    pub layout: bool,
    /// Start of the match in characters.
    pub char_start: usize,
    /// Length of the match in characters.
    pub char_len: usize,
    /// Start of the match in bytes.
    pub byte_start: usize,
    /// Length of the match in bytes.
    pub byte_len: usize,
    /// One past the last character index the DFA examined while deciding
    /// this match — `chars.len() + 1` when the decision depended on
    /// running out of input, so that appends at the end register as
    /// damage.
    pub examined_end: usize,
    /// Running maximum of `examined_end` over all records up to and
    /// including this one. Monotone, so the first record an edit can
    /// influence is found by binary search.
    pub examined_max: usize,
    /// Number of non-layout matches strictly before this record — the
    /// token-index coordinate the parser's damage position is derived
    /// from.
    pub tokens_before: u32,
}

/// An edit in both coordinate systems: characters `[char_start..char_end)`
/// (bytes `[byte_start..byte_end)`) of the old text were replaced by
/// `repl_chars` characters (`repl_bytes` bytes). Build one with
/// [`char_edit`] from a byte-range edit.
#[derive(Clone, Copy, Debug)]
pub struct CharEdit {
    /// Start of the replaced range in characters (old text).
    pub char_start: usize,
    /// End of the replaced range in characters (old text).
    pub char_end: usize,
    /// Start of the replaced range in bytes (old text).
    pub byte_start: usize,
    /// End of the replaced range in bytes (old text).
    pub byte_end: usize,
    /// Length of the replacement in characters.
    pub repl_chars: usize,
    /// Length of the replacement in bytes.
    pub repl_bytes: usize,
}

/// What one [`Scanner::relex_splice`] did, in record and token counts —
/// the numbers the serving layer turns into a token-vector splice and its
/// `tokens_relexed` counter.
#[derive(Clone, Copy, Debug)]
pub struct RelexOutcome {
    /// Index of the first replaced record; records before it were kept
    /// verbatim.
    pub first_damaged: usize,
    /// Number of records produced by actually running the DFA (the rest of
    /// the tail was kept, shifted).
    pub relexed: usize,
    /// Non-layout tokens before the damage — the parser's damage position.
    pub tokens_before_damage: usize,
    /// Non-layout tokens among the replaced records.
    pub old_tokens_removed: usize,
    /// Non-layout tokens among the re-lexed records.
    pub new_tokens: usize,
}

/// Converts a byte-range edit of `old_text` (replace `start..end` with
/// `replacement`) into [`CharEdit`] coordinates, using `recs` (the match
/// records of `old_text`) to count characters from the nearest record
/// boundary instead of from the start of the document.
pub fn char_edit(
    recs: &[MatchRec],
    old_text: &str,
    start: usize,
    end: usize,
    replacement: &str,
) -> CharEdit {
    let char_of = |byte: usize| -> usize {
        let j = recs.partition_point(|r| r.byte_start <= byte);
        match j.checked_sub(1).and_then(|j| recs.get(j)) {
            Some(r) => r.char_start + old_text[r.byte_start..byte].chars().count(),
            None => old_text[..byte].chars().count(),
        }
    };
    CharEdit {
        char_start: char_of(start),
        char_end: char_of(end),
        byte_start: start,
        byte_end: end,
        repl_chars: replacement.chars().count(),
        repl_bytes: replacement.len(),
    }
}

impl Scanner {
    /// Pins the scanner's current DFA snapshot — the pin a document
    /// session holds across [`Scanner::lex_records`] /
    /// [`Scanner::relex_splice`] calls (cache misses enrich and refresh it
    /// in place).
    pub fn dfa_snapshot(&self) -> Arc<DfaSnapshot> {
        self.dfa().snapshot()
    }

    /// Scans all of `chars` into `recs` (cleared first) — the cold start
    /// of a document session.
    pub fn lex_records(
        &self,
        pin: &mut Arc<DfaSnapshot>,
        chars: &[char],
        recs: &mut Vec<MatchRec>,
    ) -> Result<(), ScanError> {
        recs.clear();
        let mut char_pos = 0usize;
        let mut byte_pos = 0usize;
        let mut examined_max = 0usize;
        let mut tokens = 0u32;
        while char_pos < chars.len() {
            let rec = self.scan_one(pin, chars, char_pos, byte_pos, &mut examined_max, tokens)?;
            char_pos += rec.char_len;
            byte_pos += rec.byte_len;
            tokens += u32::from(!rec.layout);
            recs.push(rec);
        }
        Ok(())
    }

    /// Re-lexes the damaged region of an edited document. `chars` is the
    /// *new* (already spliced) character sequence, `recs` the record list
    /// of the old text, `edit` the splice that produced `chars`. On
    /// success `recs` describes the new text exactly as
    /// [`Scanner::lex_records`] would, with only the damaged region having
    /// been re-scanned.
    ///
    /// On a scan error `recs` is left *unchanged* — it still describes the
    /// old text and no longer matches `chars`; the caller must mark the
    /// session desynchronised and rebuild from scratch once the text scans
    /// again.
    pub fn relex_splice(
        &self,
        pin: &mut Arc<DfaSnapshot>,
        recs: &mut Vec<MatchRec>,
        chars: &[char],
        edit: CharEdit,
    ) -> Result<RelexOutcome, ScanError> {
        let delta_chars = edit.repl_chars as isize - (edit.char_end - edit.char_start) as isize;
        let delta_bytes = edit.repl_bytes as isize - (edit.byte_end - edit.byte_start) as isize;
        let total_tokens = recs
            .last()
            .map_or(0, |r| r.tokens_before + u32::from(!r.layout));

        // The first record whose examined extent reaches the edit; its
        // start is necessarily at or before the edit (records tile and the
        // previous record examined past its own end), so scanning starts
        // in the unshifted prefix where old and new coordinates agree.
        let j0 = recs.partition_point(|r| r.examined_max <= edit.char_start);
        let (mut char_pos, mut byte_pos, mut tokens) = match recs.get(j0) {
            Some(r) => (r.char_start, r.byte_start, r.tokens_before),
            // Only an empty record list reaches here: a scan of non-empty
            // text always examines through its own end.
            None => (0, 0, total_tokens),
        };
        let tokens_at_damage = tokens;
        let mut examined_max = match j0.checked_sub(1) {
            Some(j) => recs[j].examined_max,
            None => 0,
        };

        // From this new-text position on, every character maps 1:1 onto
        // the old suffix — the precondition for resynchronising.
        let edit_new_end = edit.char_start + edit.repl_chars;
        let mut scanned: Vec<MatchRec> = Vec::new();
        let mut resync: Option<usize> = None;
        loop {
            if char_pos >= edit_new_end {
                let old_pos = (char_pos as isize - delta_chars) as usize;
                if let Ok(rel) = recs[j0..].binary_search_by_key(&old_pos, |r| r.char_start) {
                    // An old match starts exactly here and sees the same
                    // suffix (equal content, equal distance to the end):
                    // it and everything after it re-lex identically.
                    resync = Some(j0 + rel);
                    break;
                }
            }
            if char_pos >= chars.len() {
                break;
            }
            let rec = self.scan_one(pin, chars, char_pos, byte_pos, &mut examined_max, tokens)?;
            char_pos += rec.char_len;
            byte_pos += rec.byte_len;
            tokens += u32::from(!rec.layout);
            scanned.push(rec);
        }

        let outcome = |old_tokens_removed: u32| RelexOutcome {
            first_damaged: j0,
            relexed: scanned.len(),
            tokens_before_damage: tokens_at_damage as usize,
            old_tokens_removed: old_tokens_removed as usize,
            new_tokens: (tokens - tokens_at_damage) as usize,
        };
        match resync {
            Some(jr) => {
                let out = outcome(recs[jr].tokens_before - tokens_at_damage);
                let token_delta = tokens as i64 - recs[jr].tokens_before as i64;
                let mut running_max = examined_max;
                for r in &mut recs[jr..] {
                    r.char_start = (r.char_start as isize + delta_chars) as usize;
                    r.byte_start = (r.byte_start as isize + delta_bytes) as usize;
                    r.examined_end = (r.examined_end as isize + delta_chars) as usize;
                    r.tokens_before = (r.tokens_before as i64 + token_delta) as u32;
                    running_max = running_max.max(r.examined_end);
                    r.examined_max = running_max;
                }
                recs.splice(j0..jr, scanned);
                Ok(out)
            }
            None => {
                let out = outcome(total_tokens - tokens_at_damage);
                recs.truncate(j0);
                recs.extend(scanned);
                Ok(out)
            }
        }
    }

    fn scan_one(
        &self,
        pin: &mut Arc<DfaSnapshot>,
        chars: &[char],
        char_start: usize,
        byte_start: usize,
        examined_max: &mut usize,
        tokens_before: u32,
    ) -> Result<MatchRec, ScanError> {
        let (m, examined_end) = self
            .dfa()
            .longest_match_pinned_examined(pin, chars, char_start);
        let (char_len, slot) = match m {
            Some((len, slot)) if len > 0 => (len, slot),
            _ => {
                return Err(ScanError::UnexpectedCharacter {
                    offset: byte_start,
                    character: chars[char_start],
                })
            }
        };
        let byte_len = chars[char_start..char_start + char_len]
            .iter()
            .map(|c| c.len_utf8())
            .sum();
        *examined_max = (*examined_max).max(examined_end);
        Ok(MatchRec {
            slot,
            layout: self.slot(slot).is_some_and(|d| d.layout),
            char_start,
            char_len,
            byte_start,
            byte_len,
            examined_end,
            examined_max: *examined_max,
            tokens_before,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::simple_scanner;

    fn records(scanner: &Scanner, text: &str) -> Vec<MatchRec> {
        let chars: Vec<char> = text.chars().collect();
        let mut pin = scanner.dfa_snapshot();
        let mut recs = Vec::new();
        scanner.lex_records(&mut pin, &chars, &mut recs).unwrap();
        recs
    }

    /// Applies `start..end -> replacement` incrementally and checks the
    /// record list is bit-identical to a cold scan of the edited text.
    /// Returns the outcome for extra assertions.
    fn check_splice(scanner: &Scanner, text: &str, start: usize, end: usize, repl: &str) -> RelexOutcome {
        let mut recs = records(scanner, text);
        let edit = char_edit(&recs, text, start, end, repl);
        let mut new_text = text.to_owned();
        new_text.replace_range(start..end, repl);
        let chars: Vec<char> = new_text.chars().collect();
        let mut pin = scanner.dfa_snapshot();
        let out = scanner
            .relex_splice(&mut pin, &mut recs, &chars, edit)
            .unwrap();
        assert_eq!(
            recs,
            records(scanner, &new_text),
            "`{text}` [{start}..{end}) -> `{repl}`"
        );
        out
    }

    fn test_scanner() -> Scanner {
        simple_scanner(&["if", "then", "else"])
    }

    #[test]
    fn splices_match_cold_scan() {
        let s = test_scanner();
        let text = "if alpha then beta42 else gamma -- tail comment\nnext 99";
        for (start, end, repl) in [
            (0, 0, "if "),              // insert at front
            (3, 8, "zz"),               // replace a word
            (3, 3, "x"),                // insert inside a word
            (2, 4, ""),                 // delete across a boundary
            (8, 9, ""),                 // delete a space: merges tokens
            (14, 14, " "),              // split a token
            (18, 20, "x y"),            // digits -> words
            (text.len(), text.len(), "9"), // append (EOF-sensitive)
            (text.len() - 2, text.len(), ""), // delete at end
            (34, 38, "still"),          // edit inside the comment
            (31, 32, "\n"),             // newline ends the comment early
            (0, text.len(), "then"),    // replace everything
            (5, 5, ""),                 // no-op edit
        ] {
            check_splice(&s, text, start, end, repl);
        }
    }

    #[test]
    fn whole_token_delete_resyncs_immediately() {
        let s = test_scanner();
        // Deleting `alpha ` on a whole-record boundary: the damage starts
        // at the preceding space (it examined into `alpha`), and the tail
        // re-aligns after at most that one re-scan.
        let out = check_splice(&s, "if alpha then beta", 3, 9, "");
        assert!(out.relexed <= 1, "relexed {} records", out.relexed);
        assert_eq!(out.old_tokens_removed, out.new_tokens + 1);
    }

    #[test]
    fn whitespace_only_edit_keeps_tokens() {
        let s = test_scanner();
        let out = check_splice(&s, "if alpha  then beta", 8, 10, " \t ");
        assert_eq!(out.old_tokens_removed, out.new_tokens);
        assert!(out.relexed <= 3);
    }

    #[test]
    fn edit_far_from_tail_leaves_tail_untouched() {
        let s = test_scanner();
        let text = "word ".repeat(200);
        let out = check_splice(&s, &text, 7, 9, "x");
        assert!(out.first_damaged <= 3);
        assert!(out.relexed <= 4, "relexed {} records", out.relexed);
    }

    #[test]
    fn unicode_edit_keeps_byte_offsets_consistent() {
        // Multibyte characters live in the comment (the identifier class
        // is ASCII); edits before, inside and after them must keep the
        // byte/char offset pairs in sync.
        let s = test_scanner();
        let text = "if abc then x -- äöü βeta\nelse 42";
        let comment = text.find("äöü").unwrap();
        check_splice(&s, text, comment, comment + "äöü".len(), "plain");
        check_splice(&s, text, comment + 2, comment + 2, "ß");
        let start = text.find("then").unwrap();
        check_splice(&s, text, start, start + 4, "else");
        let tail = text.find("else").unwrap();
        check_splice(&s, text, tail, tail + 4, "x");
    }

    #[test]
    fn scan_error_leaves_records_describing_old_text() {
        let s = test_scanner();
        let text = "if alpha then";
        let mut recs = records(&s, text);
        let before = recs.clone();
        let edit = char_edit(&recs, text, 3, 3, "%");
        let mut new_text = text.to_owned();
        new_text.replace_range(3..3, "%");
        let chars: Vec<char> = new_text.chars().collect();
        let mut pin = s.dfa_snapshot();
        let err = s.relex_splice(&mut pin, &mut recs, &chars, edit);
        assert!(matches!(
            err,
            Err(ScanError::UnexpectedCharacter { character: '%', .. })
        ));
        assert_eq!(recs, before);
    }

    #[test]
    fn empty_document_grows_and_shrinks() {
        let s = test_scanner();
        check_splice(&s, "", 0, 0, "if x");
        check_splice(&s, "if x", 0, 4, "");
    }
}
