//! # ipg-lexer
//!
//! **ISG** — the lazy and incremental lexical scanner generator that
//! accompanies IPG (the paper's §1 refers to it as \[HKR87a\]; the
//! ISG/IPG combination is what drives the ASF/SDF syntax-directed editor).
//!
//! The same two ideas as the parser generator, applied to scanners:
//!
//! * **lazy** — the DFA is obtained from the token definitions by *lazy*
//!   subset construction: DFA states and transitions are created the first
//!   time the scanner needs them ([`dfa::LazyDfa`]);
//! * **incremental** — token definitions can be added and removed at run
//!   time; the cheap NFA is rebuilt and the DFA re-materialises by need
//!   ([`scanner::Scanner`]).
//!
//! Supporting modules: SDF-style character classes ([`charclass`]),
//! regular expressions with a small textual notation ([`regex`]), and
//! Thompson construction ([`nfa`]).
//!
//! ```
//! use ipg_lexer::{simple_scanner};
//!
//! let mut scanner = simple_scanner(&["while", "do", ":="]);
//! let tokens = scanner.tokenize("while n do n := n1").unwrap();
//! let names: Vec<_> = tokens.iter().map(|t| t.name.as_str()).collect();
//! assert_eq!(names, ["while", "id", "do", "id", ":=", "id"]);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod charclass;
pub mod dfa;
pub mod nfa;
pub mod regex;
pub mod relex;
pub mod scanner;

pub use charclass::CharClass;
pub use dfa::{DfaSnapshot, DfaStats, LazyDfa};
pub use nfa::{Nfa, TokenId};
pub use regex::Regex;
pub use relex::{char_edit, CharEdit, MatchRec, RelexOutcome};
pub use scanner::{simple_scanner, RawMatch, ScanError, Scanner, Token, TokenDef, TokenStream};
