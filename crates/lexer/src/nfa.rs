//! Thompson construction of a non-deterministic finite automaton from a set
//! of token definitions, plus a direct NFA simulator used as the reference
//! implementation for the lazy DFA.

use crate::charclass::CharClass;
use crate::regex::Regex;

/// Index of a token definition within a scanner; doubles as the priority
/// (lower index wins on equal match length).
pub type TokenId = usize;

/// A state of the NFA.
#[derive(Clone, Debug, Default)]
pub struct NfaState {
    /// Outgoing character transitions.
    pub transitions: Vec<(CharClass, usize)>,
    /// Outgoing epsilon transitions.
    pub epsilon: Vec<usize>,
    /// If this state is accepting, the token it accepts.
    pub accept: Option<TokenId>,
}

/// One token's compiled fragment inside the combined NFA: the contiguous
/// state range the Thompson construction appended for it, its entry state
/// (reached by one epsilon from the global start) and whether it is still
/// part of the lexical syntax.
///
/// Fragments are what make **incremental** definition changes cheap:
/// fragments never reference each other's states (only the global start
/// has epsilon edges into fragment entries), so adding a token appends a
/// fragment without renumbering anything, and removing one merely unlinks
/// its entry and clears its accepts — every DFA state whose NFA set is
/// disjoint from the touched fragment stays valid and can be carried over.
#[derive(Clone, Debug)]
struct Fragment {
    entry: usize,
    /// `first..last` — the state range the fragment occupies.
    first: usize,
    last: usize,
    active: bool,
}

/// A non-deterministic finite automaton recognising the union of all token
/// definitions, each accept state tagged with its token.
#[derive(Clone, Debug, Default)]
pub struct Nfa {
    states: Vec<NfaState>,
    start: usize,
    fragments: Vec<Fragment>,
    /// States belonging to removed fragments (garbage until a rebuild).
    dead_states: usize,
}

impl Nfa {
    /// Builds the combined NFA for `tokens`; the i-th regex accepts token
    /// id `i`.
    pub fn build(tokens: &[Regex]) -> Self {
        let mut nfa = Nfa {
            states: vec![NfaState::default()],
            start: 0,
            fragments: Vec::new(),
            dead_states: 0,
        };
        for regex in tokens {
            nfa.add_token(regex);
        }
        nfa
    }

    /// Appends the fragment for one more token definition and returns its
    /// token id (= fragment index). Existing states keep their numbering,
    /// which is what allows the lazy DFA to carry its materialised states
    /// across the change.
    pub fn add_token(&mut self, regex: &Regex) -> TokenId {
        let id = self.fragments.len();
        let first = self.states.len();
        let (entry, exit) = self.compile(regex);
        let last = self.states.len();
        self.states[self.start].epsilon.push(entry);
        self.states[exit].accept = Some(id);
        self.fragments.push(Fragment {
            entry,
            first,
            last,
            active: true,
        });
        id
    }

    /// Deactivates token `id`: unlinks its fragment from the start state
    /// and clears its accepts. The fragment's states remain (unreachable)
    /// so that all other state numbering — and therefore every DFA state
    /// not involving this fragment — stays valid. Returns `false` when the
    /// token was already removed.
    pub fn remove_token(&mut self, id: TokenId) -> bool {
        let Some(fragment) = self.fragments.get_mut(id) else {
            return false;
        };
        if !fragment.active {
            return false;
        }
        fragment.active = false;
        let (entry, first, last) = (fragment.entry, fragment.first, fragment.last);
        self.states[self.start].epsilon.retain(|&e| e != entry);
        for state in &mut self.states[first..last] {
            state.accept = None;
        }
        self.dead_states += last - first;
        true
    }

    /// The state range of token `id`'s fragment.
    pub fn fragment_range(&self, id: TokenId) -> std::ops::Range<usize> {
        let fragment = &self.fragments[id];
        fragment.first..fragment.last
    }

    /// `true` while token `id` is part of the lexical syntax.
    pub fn is_token_active(&self, id: TokenId) -> bool {
        self.fragments.get(id).is_some_and(|f| f.active)
    }

    /// Fraction of states that belong to removed fragments. When this
    /// grows large the owner should rebuild the NFA from the active
    /// definitions instead of carrying more garbage.
    pub fn dead_fraction(&self) -> f64 {
        if self.states.is_empty() {
            0.0
        } else {
            self.dead_states as f64 / self.states.len() as f64
        }
    }

    /// The start state.
    pub fn start(&self) -> usize {
        self.start
    }

    /// All states.
    pub fn states(&self) -> &[NfaState] {
        &self.states
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    fn push_state(&mut self) -> usize {
        self.states.push(NfaState::default());
        self.states.len() - 1
    }

    /// Compiles `regex` into a fragment, returning `(entry, exit)` states.
    fn compile(&mut self, regex: &Regex) -> (usize, usize) {
        match regex {
            Regex::Epsilon => {
                let entry = self.push_state();
                let exit = self.push_state();
                self.states[entry].epsilon.push(exit);
                (entry, exit)
            }
            Regex::Literal(text) => {
                let entry = self.push_state();
                let mut current = entry;
                for c in text.chars() {
                    let next = self.push_state();
                    self.states[current]
                        .transitions
                        .push((CharClass::single(c), next));
                    current = next;
                }
                (entry, current)
            }
            Regex::Class(class) => {
                let entry = self.push_state();
                let exit = self.push_state();
                self.states[entry].transitions.push((class.clone(), exit));
                (entry, exit)
            }
            Regex::Concat(parts) => {
                let mut entry: Option<usize> = None;
                let mut current_exit: Option<usize> = None;
                for part in parts {
                    let (e, x) = self.compile(part);
                    if let Some(prev_exit) = current_exit {
                        self.states[prev_exit].epsilon.push(e);
                    } else {
                        entry = Some(e);
                    }
                    current_exit = Some(x);
                }
                match (entry, current_exit) {
                    (Some(e), Some(x)) => (e, x),
                    _ => self.compile(&Regex::Epsilon),
                }
            }
            Regex::Alt(parts) => {
                let entry = self.push_state();
                let exit = self.push_state();
                for part in parts {
                    let (e, x) = self.compile(part);
                    self.states[entry].epsilon.push(e);
                    self.states[x].epsilon.push(exit);
                }
                (entry, exit)
            }
            Regex::Star(inner) => {
                let entry = self.push_state();
                let exit = self.push_state();
                let (e, x) = self.compile(inner);
                self.states[entry].epsilon.push(e);
                self.states[entry].epsilon.push(exit);
                self.states[x].epsilon.push(e);
                self.states[x].epsilon.push(exit);
                (entry, exit)
            }
            Regex::Plus(inner) => {
                let (e, x) = self.compile(inner);
                let exit = self.push_state();
                self.states[x].epsilon.push(e);
                self.states[x].epsilon.push(exit);
                (e, exit)
            }
            Regex::Opt(inner) => {
                let entry = self.push_state();
                let exit = self.push_state();
                let (e, x) = self.compile(inner);
                self.states[entry].epsilon.push(e);
                self.states[entry].epsilon.push(exit);
                self.states[x].epsilon.push(exit);
                (entry, exit)
            }
        }
    }

    /// The epsilon closure of a set of states (sorted, deduplicated).
    pub fn epsilon_closure(&self, states: &[usize]) -> Vec<usize> {
        let mut closure: Vec<usize> = states.to_vec();
        let mut seen: Vec<bool> = vec![false; self.states.len()];
        for &s in states {
            seen[s] = true;
        }
        let mut work: Vec<usize> = states.to_vec();
        while let Some(s) = work.pop() {
            for &t in &self.states[s].epsilon {
                if !seen[t] {
                    seen[t] = true;
                    closure.push(t);
                    work.push(t);
                }
            }
        }
        closure.sort_unstable();
        closure
    }

    /// The set of states reachable from `states` by consuming `c`,
    /// including the epsilon closure of the result.
    pub fn step(&self, states: &[usize], c: char) -> Vec<usize> {
        let mut next = Vec::new();
        for &s in states {
            for (class, target) in &self.states[s].transitions {
                if class.contains(c) {
                    next.push(*target);
                }
            }
        }
        next.sort_unstable();
        next.dedup();
        self.epsilon_closure(&next)
    }

    /// The highest-priority (lowest-id) token accepted by any state in the
    /// set.
    pub fn accepting_token(&self, states: &[usize]) -> Option<TokenId> {
        states
            .iter()
            .filter_map(|&s| self.states[s].accept)
            .min()
    }

    /// Direct NFA simulation: the longest prefix of `input` (given as a
    /// char slice) that matches any token, together with the token id.
    /// Used as the reference implementation in tests and property checks.
    pub fn longest_match(&self, input: &[char]) -> Option<(usize, TokenId)> {
        let mut current = self.epsilon_closure(&[self.start]);
        let mut best: Option<(usize, TokenId)> = None;
        if let Some(t) = self.accepting_token(&current) {
            best = Some((0, t));
        }
        for (i, &c) in input.iter().enumerate() {
            current = self.step(&current, c);
            if current.is_empty() {
                break;
            }
            if let Some(t) = self.accepting_token(&current) {
                best = Some((i + 1, t));
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chars(s: &str) -> Vec<char> {
        s.chars().collect()
    }

    #[test]
    fn literal_matching() {
        let nfa = Nfa::build(&[Regex::literal("if"), Regex::literal("then")]);
        assert_eq!(nfa.longest_match(&chars("if")), Some((2, 0)));
        assert_eq!(nfa.longest_match(&chars("then rest")), Some((4, 1)));
        assert_eq!(nfa.longest_match(&chars("els")), None);
    }

    #[test]
    fn identifier_and_number_tokens() {
        let ident = Regex::parse("[a-zA-Z] [a-zA-Z0-9_]*").unwrap();
        let number = Regex::parse("[0-9]+").unwrap();
        let nfa = Nfa::build(&[ident, number]);
        assert_eq!(nfa.longest_match(&chars("hello42 x")), Some((7, 0)));
        assert_eq!(nfa.longest_match(&chars("42x")), Some((2, 1)));
        assert_eq!(nfa.longest_match(&chars("+x")), None);
    }

    #[test]
    fn longest_match_prefers_longer_over_priority() {
        // `if` (keyword) vs identifiers: `iffy` must lex as one identifier.
        let keyword = Regex::literal("if");
        let ident = Regex::parse("[a-z]+").unwrap();
        let nfa = Nfa::build(&[keyword, ident]);
        assert_eq!(nfa.longest_match(&chars("iffy")), Some((4, 1)));
        // Equal length: the earlier definition (keyword) wins.
        assert_eq!(nfa.longest_match(&chars("if ")), Some((2, 0)));
    }

    #[test]
    fn star_and_optional() {
        let signed = Regex::parse("('+' | '-')? [0-9]+").unwrap();
        let nfa = Nfa::build(&[signed]);
        assert_eq!(nfa.longest_match(&chars("-12)")), Some((3, 0)));
        assert_eq!(nfa.longest_match(&chars("7")), Some((1, 0)));
        assert_eq!(nfa.longest_match(&chars("+")), None);
        let comment = Regex::parse("'--' ~[\\n]*").unwrap();
        let nfa = Nfa::build(&[comment]);
        assert_eq!(nfa.longest_match(&chars("-- rest of line\nx")), Some((15, 0)));
    }

    #[test]
    fn nullable_token_matches_empty_prefix() {
        let star = Regex::parse("[a]*").unwrap();
        let nfa = Nfa::build(&[star]);
        assert_eq!(nfa.longest_match(&chars("bbb")), Some((0, 0)));
        assert_eq!(nfa.longest_match(&chars("aab")), Some((2, 0)));
    }

    #[test]
    fn epsilon_closure_is_sorted_and_complete() {
        let nfa = Nfa::build(&[Regex::parse("'a'*").unwrap()]);
        let closure = nfa.epsilon_closure(&[nfa.start()]);
        assert!(closure.windows(2).all(|w| w[0] < w[1]));
        assert!(closure.contains(&nfa.start()));
        assert!(nfa.num_states() >= 3);
    }
}
