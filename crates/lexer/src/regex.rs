//! Regular expressions over characters — the notation in which token
//! definitions (SDF lexical functions) are written before they are compiled
//! to automata.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::charclass::CharClass;

/// A regular expression.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Regex {
    /// Matches the empty string.
    Epsilon,
    /// Matches exactly the given literal text.
    Literal(String),
    /// Matches one character from the class.
    Class(CharClass),
    /// Matches the concatenation of the parts.
    Concat(Vec<Regex>),
    /// Matches any one of the alternatives.
    Alt(Vec<Regex>),
    /// Matches zero or more repetitions.
    Star(Box<Regex>),
    /// Matches one or more repetitions.
    Plus(Box<Regex>),
    /// Matches zero or one occurrence.
    Opt(Box<Regex>),
}

impl Regex {
    /// A literal string.
    pub fn literal(text: &str) -> Self {
        Regex::Literal(text.to_owned())
    }

    /// A single character class.
    pub fn class(class: CharClass) -> Self {
        Regex::Class(class)
    }

    /// Concatenation of several expressions.
    pub fn concat(parts: impl IntoIterator<Item = Regex>) -> Self {
        let parts: Vec<Regex> = parts.into_iter().collect();
        match parts.len() {
            0 => Regex::Epsilon,
            1 => parts.into_iter().next().expect("length checked"),
            _ => Regex::Concat(parts),
        }
    }

    /// Alternation of several expressions.
    pub fn alt(parts: impl IntoIterator<Item = Regex>) -> Self {
        let parts: Vec<Regex> = parts.into_iter().collect();
        match parts.len() {
            0 => Regex::Epsilon,
            1 => parts.into_iter().next().expect("length checked"),
            _ => Regex::Alt(parts),
        }
    }

    /// Zero or more repetitions of `self`.
    pub fn star(self) -> Self {
        Regex::Star(Box::new(self))
    }

    /// One or more repetitions of `self`.
    pub fn plus(self) -> Self {
        Regex::Plus(Box::new(self))
    }

    /// Zero or one occurrence of `self`.
    pub fn opt(self) -> Self {
        Regex::Opt(Box::new(self))
    }

    /// `true` if the expression can match the empty string.
    pub fn is_nullable(&self) -> bool {
        match self {
            Regex::Epsilon | Regex::Star(_) | Regex::Opt(_) => true,
            Regex::Literal(s) => s.is_empty(),
            Regex::Class(_) => false,
            Regex::Concat(parts) => parts.iter().all(Regex::is_nullable),
            Regex::Alt(parts) => parts.iter().any(Regex::is_nullable),
            Regex::Plus(inner) => inner.is_nullable(),
        }
    }

    /// Parses a small textual regex notation:
    ///
    /// * `'text'` — literal (single quotes; `''` escapes a quote)
    /// * `[a-z]`, `~[a-z]` — character classes
    /// * `.` — any character
    /// * juxtaposition — concatenation, `|` — alternation
    /// * postfix `*`, `+`, `?`, parentheses for grouping
    ///
    /// ```
    /// use ipg_lexer::Regex;
    /// let ident = Regex::parse("[a-zA-Z] [a-zA-Z0-9_]*").unwrap();
    /// assert!(!ident.is_nullable());
    /// ```
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut parser = RegexParser {
            chars: text.chars().collect(),
            pos: 0,
        };
        let re = parser.parse_alt()?;
        parser.skip_ws();
        if parser.pos != parser.chars.len() {
            return Err(format!("unexpected `{}` at offset {}", parser.chars[parser.pos], parser.pos));
        }
        Ok(re)
    }
}

impl fmt::Display for Regex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Regex::Epsilon => write!(f, "''"),
            Regex::Literal(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Regex::Class(c) => write!(f, "{c}"),
            Regex::Concat(parts) => {
                let rendered: Vec<String> = parts.iter().map(|p| p.to_string()).collect();
                write!(f, "({})", rendered.join(" "))
            }
            Regex::Alt(parts) => {
                let rendered: Vec<String> = parts.iter().map(|p| p.to_string()).collect();
                write!(f, "({})", rendered.join(" | "))
            }
            Regex::Star(inner) => write!(f, "{inner}*"),
            Regex::Plus(inner) => write!(f, "{inner}+"),
            Regex::Opt(inner) => write!(f, "{inner}?"),
        }
    }
}

struct RegexParser {
    chars: Vec<char>,
    pos: usize,
}

impl RegexParser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.pos += 1;
        }
    }

    fn parse_alt(&mut self) -> Result<Regex, String> {
        let mut parts = vec![self.parse_concat()?];
        loop {
            self.skip_ws();
            if self.peek() == Some('|') {
                self.bump();
                parts.push(self.parse_concat()?);
            } else {
                break;
            }
        }
        Ok(Regex::alt(parts))
    }

    fn parse_concat(&mut self) -> Result<Regex, String> {
        let mut parts = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                None | Some('|') | Some(')') => break,
                _ => parts.push(self.parse_postfix()?),
            }
        }
        if parts.is_empty() {
            return Ok(Regex::Epsilon);
        }
        Ok(Regex::concat(parts))
    }

    fn parse_postfix(&mut self) -> Result<Regex, String> {
        let mut atom = self.parse_atom()?;
        loop {
            match self.peek() {
                Some('*') => {
                    self.bump();
                    atom = atom.star();
                }
                Some('+') => {
                    self.bump();
                    atom = atom.plus();
                }
                Some('?') => {
                    self.bump();
                    atom = atom.opt();
                }
                _ => break,
            }
        }
        Ok(atom)
    }

    fn parse_atom(&mut self) -> Result<Regex, String> {
        self.skip_ws();
        match self.peek() {
            Some('(') => {
                self.bump();
                let inner = self.parse_alt()?;
                if self.bump() != Some(')') {
                    return Err("missing closing parenthesis".to_owned());
                }
                Ok(inner)
            }
            Some('\'') => {
                self.bump();
                let mut text = String::new();
                loop {
                    match self.bump() {
                        Some('\'') => {
                            if self.peek() == Some('\'') {
                                self.bump();
                                text.push('\'');
                            } else {
                                break;
                            }
                        }
                        Some(c) => text.push(c),
                        None => return Err("unterminated literal".to_owned()),
                    }
                }
                if text.is_empty() {
                    Ok(Regex::Epsilon)
                } else {
                    Ok(Regex::Literal(text))
                }
            }
            Some('[') | Some('~') => {
                let start = self.pos;
                if self.peek() == Some('~') {
                    self.bump();
                }
                if self.bump() != Some('[') {
                    return Err("expected `[` after `~`".to_owned());
                }
                loop {
                    match self.bump() {
                        Some(']') => break,
                        Some('\\') => {
                            self.bump();
                        }
                        Some(_) => {}
                        None => return Err("unterminated character class".to_owned()),
                    }
                }
                let text: String = self.chars[start..self.pos].iter().collect();
                CharClass::parse(&text).map(Regex::Class)
            }
            Some('.') => {
                self.bump();
                Ok(Regex::Class(CharClass::empty().negate()))
            }
            Some(c) => Err(format!("unexpected `{c}` in regular expression")),
            None => Err("unexpected end of regular expression".to_owned()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combinators_build_expected_shapes() {
        let re = Regex::concat([
            Regex::class(CharClass::ident_start()),
            Regex::class(CharClass::ident_continue()).star(),
        ]);
        assert!(matches!(re, Regex::Concat(ref v) if v.len() == 2));
        assert!(!re.is_nullable());
        assert!(Regex::literal("").is_nullable());
        assert!(Regex::literal("x").opt().is_nullable());
        assert!(Regex::alt([Regex::literal("a"), Regex::Epsilon]).is_nullable());
        assert!(!Regex::class(CharClass::digit()).plus().is_nullable());
    }

    #[test]
    fn single_element_constructors_collapse() {
        assert_eq!(Regex::concat([Regex::literal("a")]), Regex::literal("a"));
        assert_eq!(Regex::alt([Regex::literal("a")]), Regex::literal("a"));
        assert_eq!(Regex::concat(std::iter::empty()), Regex::Epsilon);
    }

    #[test]
    fn parses_identifier_regex() {
        let re = Regex::parse("[a-zA-Z] [a-zA-Z0-9_]*").unwrap();
        assert!(matches!(re, Regex::Concat(_)));
        let num = Regex::parse("[0-9]+").unwrap();
        assert!(matches!(num, Regex::Plus(_)));
    }

    #[test]
    fn parses_literals_alternation_and_groups() {
        let re = Regex::parse("'if' | 'then' | 'else'").unwrap();
        assert!(matches!(re, Regex::Alt(ref v) if v.len() == 3));
        let re = Regex::parse("('+' | '-')? [0-9]+").unwrap();
        assert!(matches!(re, Regex::Concat(_)));
        let quoted = Regex::parse("'it''s'").unwrap();
        assert_eq!(quoted, Regex::Literal("it's".to_owned()));
    }

    #[test]
    fn parses_negated_class_and_dot() {
        let re = Regex::parse("~[\\n]*").unwrap();
        assert!(matches!(re, Regex::Star(_)));
        let any = Regex::parse(".").unwrap();
        match any {
            Regex::Class(c) => assert!(c.contains('x') && c.contains('\n')),
            other => panic!("expected class, got {other:?}"),
        }
    }

    #[test]
    fn parse_errors() {
        assert!(Regex::parse("(abc").is_err());
        assert!(Regex::parse("'abc").is_err());
        assert!(Regex::parse("[abc").is_err());
        assert!(Regex::parse("*").is_err());
        assert!(Regex::parse("a").is_err());
        assert!(Regex::parse("'a' )").is_err());
    }

    #[test]
    fn display_produces_parseable_text_for_simple_cases() {
        for text in ["'if'", "[0-9]+", "('+' | '-')? [0-9]+"] {
            let re = Regex::parse(text).unwrap();
            let printed = re.to_string();
            let reparsed = Regex::parse(&printed).unwrap();
            assert_eq!(re, reparsed, "round-trip of `{text}` via `{printed}`");
        }
    }
}
