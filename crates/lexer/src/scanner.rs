//! The incremental scanner generator ISG: named token definitions, layout
//! skipping, longest-match scanning, and incremental addition/removal of
//! token definitions.
//!
//! The scanner produced here feeds the parsers: its token *names* are
//! mapped to grammar terminals by name (see [`Scanner::tokenize_for`]), so
//! an SDF-style definition can drive lexer and parser from one source.

use std::fmt;
use std::sync::Arc;

use ipg_grammar::{Grammar, SymbolId};

use crate::dfa::{DfaSnapshot, DfaStats, LazyDfa};
use crate::nfa::{Nfa, TokenId};
use crate::regex::Regex;

/// One token definition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TokenDef {
    /// The token's name; for keywords and punctuation this is usually the
    /// literal text itself (matching the grammar's terminal names).
    pub name: String,
    /// The regular expression it matches.
    pub regex: Regex,
    /// Layout tokens (whitespace, comments) are matched and then skipped.
    pub layout: bool,
}

impl TokenDef {
    /// A normal (non-layout) token.
    pub fn new(name: &str, regex: Regex) -> Self {
        TokenDef {
            name: name.to_owned(),
            regex,
            layout: false,
        }
    }

    /// A keyword or punctuation token whose name equals its literal text.
    pub fn keyword(text: &str) -> Self {
        TokenDef::new(text, Regex::literal(text))
    }

    /// A layout token (matched but not reported).
    pub fn layout(name: &str, regex: Regex) -> Self {
        TokenDef {
            name: name.to_owned(),
            regex,
            layout: true,
        }
    }
}

/// A token produced by the scanner.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// Name of the matching token definition.
    pub name: String,
    /// The matched text.
    pub text: String,
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

/// Errors produced while scanning.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScanError {
    /// No token definition matches at this offset.
    UnexpectedCharacter {
        /// Byte offset of the offending character.
        offset: usize,
        /// The character itself.
        character: char,
    },
    /// A token name has no corresponding terminal in the grammar (only
    /// reported by [`Scanner::tokenize_for`]).
    UnknownTerminal {
        /// The token name that could not be mapped.
        name: String,
    },
}

impl fmt::Display for ScanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScanError::UnexpectedCharacter { offset, character } => {
                write!(f, "unexpected character {character:?} at offset {offset}")
            }
            ScanError::UnknownTerminal { name } => {
                write!(f, "token `{name}` has no terminal in the grammar")
            }
        }
    }
}

impl std::error::Error for ScanError {}

/// The incremental, lazily determinising scanner.
///
/// Scanning ([`Scanner::tokenize`] / [`Scanner::tokenize_for`]) takes
/// `&self`: the lazily materialised DFA synchronises internally, so many
/// threads can tokenize against one shared scanner (the serving layer's
/// lexing stage) without exclusive access. Definition changes
/// ([`Scanner::add_definition`] / [`Scanner::remove_definition`]) remain
/// `&mut self` writes, mirroring the parser's read/`MODIFY` split.
///
/// A definition change **carries over** the still-valid part of the lazy
/// DFA instead of discarding it (see [`LazyDfa::add_token`] /
/// [`LazyDfa::remove_token`]): token ids are stable slot indices (removed
/// definitions leave a tombstone), only the DFA states actually affected
/// by the changed definition are re-derived by need, and a full recompile
/// happens only as a fallback once removals have left too much garbage
/// behind.
#[derive(Clone, Debug)]
pub struct Scanner {
    /// Token-id slots; `None` is the tombstone of a removed definition.
    /// Slot order is the tie-breaking priority (earlier wins).
    slots: Vec<Option<TokenDef>>,
    /// The active definitions, in slot (= priority) order.
    active: Vec<TokenDef>,
    dfa: LazyDfa,
    /// Number of definition changes applied (each one used to force a
    /// full DFA rebuild; with carry-over it still counts the lexical
    /// generation).
    rebuilds: usize,
    /// DFA states carried over across definition changes, over the
    /// scanner's lifetime (survives the fallback recompile, which resets
    /// the DFA's own counters).
    carried_total: usize,
}

/// Garbage fraction of the lazy DFA above which a definition *removal*
/// falls back to a full recompile instead of carrying more tombstones.
const REBUILD_GARBAGE_FRACTION: f64 = 0.5;

/// Definition changes between unconditional compacting recompiles.
/// Additions can orphan materialised DFA states that the garbage counter
/// cannot see (the start-state reset changes which subsets are reachable,
/// but an orphaned subset may legitimately be resurrected through the
/// interning index, so there is no cheap exact accounting); a periodic
/// compaction bounds that growth while leaving carry-over in force for
/// every edit in between. One cold restart per 64 edits still beats the
/// pre-carry-over behaviour of one cold restart per edit by 64x.
const COMPACT_EVERY_CHANGES: usize = 64;

impl Scanner {
    /// Builds a scanner for the given token definitions. Definition order
    /// is the tie-breaking priority: earlier definitions win on equal match
    /// length (put keywords before identifiers).
    pub fn new(definitions: Vec<TokenDef>) -> Self {
        let dfa = Self::compile(&definitions);
        Scanner {
            slots: definitions.iter().cloned().map(Some).collect(),
            active: definitions,
            dfa,
            rebuilds: 0,
            carried_total: 0,
        }
    }

    fn compile(definitions: &[TokenDef]) -> LazyDfa {
        let regexes: Vec<Regex> = definitions.iter().map(|d| d.regex.clone()).collect();
        LazyDfa::new(Nfa::build(&regexes))
    }

    /// The current (active) token definitions, in priority order.
    pub fn definitions(&self) -> &[TokenDef] {
        &self.active
    }

    /// DFA work counters. They persist across definition changes (the
    /// carried-over states keep serving); only the fallback recompile
    /// after heavy removal churn resets them.
    pub fn dfa_stats(&self) -> DfaStats {
        let mut stats = self.dfa.stats();
        stats.carried_over = self.carried_total;
        stats
    }

    /// How many times the token definitions have been changed.
    pub fn rebuilds(&self) -> usize {
        self.rebuilds
    }

    /// DFA states carried over across definition changes instead of being
    /// rebuilt, over the scanner's lifetime.
    pub fn carried_states(&self) -> usize {
        self.carried_total
    }

    /// Measurement knob: disable (or re-enable) the DFA's dense byte-row
    /// fast path so benches can compare dense vs lazy `char` scanning on
    /// identical hardware. Takes `&self`; safe to flip on a live scanner.
    pub fn set_dense_scanning(&self, enabled: bool) {
        self.dfa.set_dense_scanning(enabled);
    }

    /// Adds a token definition (at the lowest priority). The already
    /// materialised DFA is carried over — only the start state (whose
    /// closure gains the new definition) is re-derived by need.
    pub fn add_definition(&mut self, definition: TokenDef) {
        let carried_before = self.dfa.stats().carried_over;
        let id = self.dfa.add_token(&definition.regex);
        debug_assert_eq!(id, self.slots.len(), "token ids are slot indices");
        self.carried_total += self.dfa.stats().carried_over - carried_before;
        self.slots.push(Some(definition.clone()));
        self.active.push(definition);
        self.rebuilds += 1;
        self.maybe_compact();
    }

    /// The carry-over escape hatch: recompile from the active definitions
    /// when removals have left too much garbage behind, or on the periodic
    /// schedule that bounds the orphaned-state growth of add-heavy churn.
    fn maybe_compact(&mut self) {
        if self.rebuilds.is_multiple_of(COMPACT_EVERY_CHANGES)
            || self.dfa.garbage_fraction() > REBUILD_GARBAGE_FRACTION
        {
            self.slots = self.active.iter().cloned().map(Some).collect();
            self.dfa = Self::compile(&self.active);
        }
    }

    /// Removes every definition with the given name. Returns `true` if one
    /// was removed. DFA states unaffected by the removed definition are
    /// carried over; once removals have left more than half the automaton
    /// as garbage, the scanner falls back to a compacting recompile.
    pub fn remove_definition(&mut self, name: &str) -> bool {
        let mut removed = false;
        for id in 0..self.slots.len() {
            if self.slots[id].as_ref().is_some_and(|d| d.name == name) {
                let carried_before = self.dfa.stats().carried_over;
                self.dfa.remove_token(id);
                self.carried_total += self.dfa.stats().carried_over - carried_before;
                self.slots[id] = None;
                removed = true;
            }
        }
        if !removed {
            return false;
        }
        self.active.retain(|d| d.name != name);
        self.rebuilds += 1;
        // Fallback: compact the tombstones away and recompile. This is
        // the per-character analogue of "the class partition itself
        // changed": carrying over is no longer worth the garbage.
        self.maybe_compact();
        true
    }

    /// Scans `input` into tokens, skipping layout. Takes `&self`: threads
    /// may scan concurrently against one scanner. The call pins one
    /// immutable DFA snapshot up front and serves every per-character step
    /// from it — the hot loop is lock-free; only cache misses (first-time
    /// subset-construction steps) take the DFA's writer and refresh the
    /// pin. Byte offsets are tracked incrementally, so no per-call offset
    /// table is built. Allocates the `Token` structs it returns; streaming
    /// consumers use [`Scanner::stream`] and never materialise tokens.
    pub fn tokenize(&self, input: &str) -> Result<Vec<Token>, ScanError> {
        let mut buf = Vec::new();
        let mut stream = self.stream(input, &mut buf);
        let mut tokens = Vec::new();
        let mut byte = 0usize;
        while let Some(m) = stream.next_match()? {
            let matched = &stream.chars[m.start..m.start + m.len];
            let width: usize = matched.iter().map(|c| c.len_utf8()).sum();
            if !m.layout {
                let def = self.slots[m.slot]
                    .as_ref()
                    .expect("an accepting token is an active slot");
                tokens.push(Token {
                    name: def.name.clone(),
                    text: matched.iter().collect(),
                    start: byte,
                    end: byte + width,
                });
            }
            byte += width;
        }
        Ok(tokens)
    }

    /// Opens a streaming tokenizer over `input` using `buf` as the
    /// reusable character buffer (cleared and refilled; a recycled buffer
    /// makes the scan allocation-free). The stream pins one immutable DFA
    /// snapshot and yields token-id *slots* instead of materialised
    /// [`Token`]s — the form the fused lexer→parser path consumes.
    pub fn stream<'a>(&'a self, input: &str, buf: &'a mut Vec<char>) -> TokenStream<'a> {
        buf.clear();
        buf.extend(input.chars());
        TokenStream {
            scanner: self,
            pin: self.dfa.snapshot(),
            chars: buf,
            pos: 0,
        }
    }

    /// Modeled heap bytes of the materialised DFA snapshot (the derived,
    /// evictable state). The persistent token definitions are not counted:
    /// they are the cheap source the lazy DFA re-derives from.
    pub fn resident_bytes(&self) -> usize {
        self.dfa.snapshot().resident_bytes()
    }

    /// Per-state accounting rows of the materialised DFA snapshot:
    /// `(Arc pointer as usize, modeled bytes)`. Snapshot states are shared
    /// by `Arc` across epochs that carried them over, so a registry summing
    /// residency across tenants can dedupe by pointer identity.
    pub fn snapshot_accounting(&self) -> Vec<(usize, usize)> {
        self.dfa.snapshot().state_accounting()
    }

    /// A re-lazified copy: the same active definitions with the
    /// materialised DFA discarded, exactly as the compacting recompile in
    /// [`Scanner::maybe_compact`] would leave it. Scanning against the copy
    /// re-derives only the states the retouched inputs actually need — the
    /// eviction half of the registry's evict → re-lazify cycle. Lifetime
    /// counters (`rebuilds`, `carried_states`) are preserved so stats stay
    /// monotone across eviction.
    pub fn relazified(&self) -> Scanner {
        Scanner {
            slots: self.active.iter().cloned().map(Some).collect(),
            active: self.active.clone(),
            dfa: Self::compile(&self.active),
            rebuilds: self.rebuilds,
            carried_total: self.carried_total,
        }
    }

    /// The definition in token-id slot `id`, or `None` for tombstones of
    /// removed definitions and out-of-range ids. Slot ids are what
    /// [`TokenStream`] yields; they are stable across definition changes
    /// (until a compacting recompile renumbers them).
    pub fn slot(&self, id: TokenId) -> Option<&TokenDef> {
        self.slots.get(id)?.as_ref()
    }

    /// Number of token-id slots (active definitions plus tombstones).
    pub fn num_slots(&self) -> usize {
        self.slots.len()
    }

    /// The underlying lazy DFA (crate-internal: the incremental re-lexer
    /// in [`crate::relex`] drives it with its own pinned snapshot).
    pub(crate) fn dfa(&self) -> &LazyDfa {
        &self.dfa
    }

    /// Scans `input` and maps each token to the grammar terminal with the
    /// same name — the form the parsers consume. The paper's measurements
    /// feed the parsers exactly such pre-scanned in-memory token streams.
    pub fn tokenize_for(
        &self,
        grammar: &Grammar,
        input: &str,
    ) -> Result<Vec<SymbolId>, ScanError> {
        let tokens = self.tokenize(input)?;
        tokens
            .iter()
            .map(|t| {
                grammar
                    .symbol(&t.name)
                    .filter(|&s| grammar.is_terminal(s))
                    .ok_or_else(|| ScanError::UnknownTerminal {
                        name: t.name.clone(),
                    })
            })
            .collect()
    }
}

/// One raw scanner match: a token-id slot plus its span in characters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RawMatch {
    /// The matching token-id slot (resolve with [`Scanner::slot`]).
    pub slot: TokenId,
    /// Character index of the first matched character.
    pub start: usize,
    /// Number of matched characters.
    pub len: usize,
    /// Whether the matching definition is layout (skipped by
    /// [`TokenStream::next_slot`]).
    pub layout: bool,
}

/// A streaming tokenizer over one pinned DFA snapshot: the scanner side of
/// lexer→parser fusion.
///
/// Yields token-id slots one match at a time instead of materialising a
/// token vector — no `Token` structs, no name/text strings, no offset
/// table. Every per-character step against already-materialised DFA
/// entries is a plain read of immutable data; a miss funnels into the
/// DFA's writer and refreshes the pin in place. Byte offsets are only
/// computed on the error path.
#[derive(Debug)]
pub struct TokenStream<'a> {
    scanner: &'a Scanner,
    pin: Arc<DfaSnapshot>,
    chars: &'a [char],
    pos: usize,
}

impl TokenStream<'_> {
    /// The next raw match, layout included. `Ok(None)` at end of input.
    pub fn next_match(&mut self) -> Result<Option<RawMatch>, ScanError> {
        if self.pos >= self.chars.len() {
            return Ok(None);
        }
        match self
            .scanner
            .dfa
            .longest_match_pinned(&mut self.pin, self.chars, self.pos)
        {
            Some((len, slot)) if len > 0 => {
                let start = self.pos;
                self.pos += len;
                let layout = self.scanner.slots[slot]
                    .as_ref()
                    .expect("an accepting token is an active slot")
                    .layout;
                Ok(Some(RawMatch {
                    slot,
                    start,
                    len,
                    layout,
                }))
            }
            _ => Err(ScanError::UnexpectedCharacter {
                // Cold path: the byte offset is derived only when needed.
                offset: self.chars[..self.pos].iter().map(|c| c.len_utf8()).sum(),
                character: self.chars[self.pos],
            }),
        }
    }

    /// The next non-layout token's slot id. `Ok(None)` at end of input.
    pub fn next_slot(&mut self) -> Result<Option<TokenId>, ScanError> {
        while let Some(m) = self.next_match()? {
            if !m.layout {
                return Ok(Some(m.slot));
            }
        }
        Ok(None)
    }

    /// Characters consumed so far.
    pub fn position(&self) -> usize {
        self.pos
    }
}

/// A ready-made scanner for identifier/number/keyword languages, used by
/// examples and tests: layout is ASCII whitespace, `--`-comments run to the
/// end of the line, identifiers are `[a-zA-Z][a-zA-Z0-9_-]*`, numbers are
/// `[0-9]+`, and every supplied keyword or punctuation literal is its own
/// token named after its text.
pub fn simple_scanner(keywords: &[&str]) -> Scanner {
    let mut defs = vec![
        TokenDef::layout("WHITESPACE", Regex::class(crate::charclass::CharClass::whitespace()).plus()),
        TokenDef::layout(
            "COMMENT",
            Regex::concat([
                Regex::literal("--"),
                Regex::class(crate::charclass::CharClass::single('\n').negate()).star(),
            ]),
        ),
    ];
    for kw in keywords {
        defs.push(TokenDef::keyword(kw));
    }
    defs.push(TokenDef::new(
        "id",
        Regex::concat([
            Regex::class(crate::charclass::CharClass::ident_start()),
            Regex::class(crate::charclass::CharClass::ident_continue()).star(),
        ]),
    ));
    defs.push(TokenDef::new(
        "num",
        Regex::class(crate::charclass::CharClass::digit()).plus(),
    ));
    Scanner::new(defs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipg_grammar::fixtures;

    #[test]
    fn scans_keywords_identifiers_and_numbers() {
        let scanner = simple_scanner(&["if", "then", "else", ":=", "(", ")"]);
        let tokens = scanner
            .tokenize("if x1 then y := 42 -- trailing comment\nelse ( z )")
            .unwrap();
        let names: Vec<&str> = tokens.iter().map(|t| t.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["if", "id", "then", "id", ":=", "num", "else", "(", "id", ")"]
        );
        let texts: Vec<&str> = tokens.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts[1], "x1");
        assert_eq!(texts[5], "42");
    }

    #[test]
    fn spans_are_byte_offsets() {
        let scanner = simple_scanner(&[]);
        let tokens = scanner.tokenize("ab  cd").unwrap();
        assert_eq!(tokens[0].start, 0);
        assert_eq!(tokens[0].end, 2);
        assert_eq!(tokens[1].start, 4);
        assert_eq!(tokens[1].end, 6);
    }

    #[test]
    fn keywords_take_priority_over_identifiers_only_on_exact_match() {
        let scanner = simple_scanner(&["if"]);
        let tokens = scanner.tokenize("if iffy").unwrap();
        assert_eq!(tokens[0].name, "if");
        assert_eq!(tokens[1].name, "id");
        assert_eq!(tokens[1].text, "iffy");
    }

    #[test]
    fn unexpected_characters_are_reported_with_offsets() {
        let scanner = simple_scanner(&[]);
        let err = scanner.tokenize("abc $ def").unwrap_err();
        assert_eq!(
            err,
            ScanError::UnexpectedCharacter {
                offset: 4,
                character: '$'
            }
        );
        assert!(err.to_string().contains("offset 4"));
    }

    #[test]
    fn incremental_definition_changes_rebuild_lazily() {
        let mut scanner = simple_scanner(&[]);
        assert!(scanner.tokenize("x % y").is_err());
        scanner.add_definition(TokenDef::keyword("%"));
        assert_eq!(scanner.rebuilds(), 1);
        let tokens = scanner.tokenize("x % y").unwrap();
        assert_eq!(tokens[1].name, "%");
        // The DFA only materialised what this input needed.
        assert!(scanner.dfa_stats().states > 1);
        assert!(scanner.remove_definition("%"));
        assert!(!scanner.remove_definition("%"));
        assert!(scanner.tokenize("x % y").is_err());
        assert_eq!(scanner.rebuilds(), 2);
    }

    #[test]
    fn definition_changes_carry_over_materialised_dfa_states() {
        let mut scanner = simple_scanner(&["if"]);
        let input = "if x1 42 -- note\n";
        scanner.tokenize(input).unwrap();
        let states_before = scanner.dfa_stats().states;
        assert!(states_before > 3);
        scanner.add_definition(TokenDef::keyword("%"));
        // Everything but the start state was carried over...
        assert_eq!(scanner.carried_states(), states_before - 1);
        assert_eq!(scanner.dfa_stats().carried_over, states_before - 1);
        // ...so re-scanning the old input re-derives far less than a cold
        // scanner would.
        let misses_before = scanner.dfa_stats().cache_misses;
        let incremental = scanner.tokenize(input).unwrap();
        let incremental_misses = scanner.dfa_stats().cache_misses - misses_before;
        let cold = {
            let mut s = simple_scanner(&["if"]);
            s.add_definition(TokenDef::keyword("%"));
            s
        };
        let cold_tokens = cold.tokenize(input).unwrap();
        assert_eq!(incremental, cold_tokens, "carry-over must not change the tokens");
        assert!(
            incremental_misses < cold.dfa_stats().cache_misses,
            "carried states must save subset-construction work \
             ({incremental_misses} vs cold {})",
            cold.dfa_stats().cache_misses
        );
        // Removal also carries over and stays oracle-equivalent.
        scanner.remove_definition("%");
        assert!(scanner.carried_states() > states_before - 1);
        assert_eq!(
            scanner.tokenize(input).unwrap(),
            simple_scanner(&["if"]).tokenize(input).unwrap()
        );
    }

    #[test]
    fn heavy_removal_churn_falls_back_to_a_compacting_recompile() {
        let mut scanner = simple_scanner(&[]);
        for i in 0..12 {
            scanner.add_definition(TokenDef::keyword(&format!("kw{i}")));
        }
        scanner.tokenize("kw0 kw11 x").unwrap();
        for i in 0..12 {
            assert!(scanner.remove_definition(&format!("kw{i}")));
        }
        // The garbage threshold forced at least one compacting recompile.
        assert!(scanner.dfa.garbage_fraction() < 0.5);
        // Behaviour equals a fresh scanner with the surviving definitions.
        let input = "x1 42 kw3";
        assert_eq!(
            scanner.tokenize(input).unwrap(),
            simple_scanner(&[]).tokenize(input).unwrap()
        );
        assert_eq!(scanner.definitions().len(), simple_scanner(&[]).definitions().len());
    }

    #[test]
    fn tokenize_for_maps_to_grammar_terminals() {
        let g = fixtures::booleans();
        let scanner = simple_scanner(&["true", "false", "or", "and"]);
        let symbols = scanner.tokenize_for(&g, "true or false and true").unwrap();
        assert_eq!(symbols.len(), 5);
        assert!(symbols.iter().all(|&s| g.is_terminal(s)));
        // Unknown terminal: `id` is not part of the boolean grammar.
        let err = scanner.tokenize_for(&g, "true or banana").unwrap_err();
        assert_eq!(err, ScanError::UnknownTerminal { name: "id".to_owned() });
    }

    #[test]
    fn layout_only_input_produces_no_tokens() {
        let scanner = simple_scanner(&[]);
        assert!(scanner.tokenize("   \n\t -- just a comment").unwrap().is_empty());
        assert!(scanner.tokenize("").unwrap().is_empty());
    }

    #[test]
    fn streaming_slots_agree_with_tokenize() {
        let scanner = simple_scanner(&["if", ":="]);
        let input = "if x1 := 42 -- note\nif";
        let tokens = scanner.tokenize(input).unwrap();
        let mut buf = Vec::new();
        let mut stream = scanner.stream(input, &mut buf);
        let mut streamed = Vec::new();
        while let Some(slot) = stream.next_slot().unwrap() {
            streamed.push(scanner.slot(slot).unwrap().name.clone());
        }
        let names: Vec<String> = tokens.iter().map(|t| t.name.clone()).collect();
        assert_eq!(streamed, names);
        assert_eq!(stream.position(), input.chars().count());
        // The char buffer is reusable: a second scan allocates into the
        // same capacity.
        let mut stream = scanner.stream("if if", &mut buf);
        assert!(stream.next_slot().unwrap().is_some());
    }

    #[test]
    fn streaming_reports_scan_errors_with_byte_offsets() {
        let scanner = simple_scanner(&[]);
        let mut buf = Vec::new();
        let mut stream = scanner.stream("ab $", &mut buf);
        assert!(stream.next_slot().is_ok());
        assert_eq!(
            stream.next_slot().unwrap_err(),
            ScanError::UnexpectedCharacter {
                offset: 3,
                character: '$'
            }
        );
        // Slot accessors: tombstones and out-of-range ids answer None.
        assert!(scanner.slot(scanner.num_slots()).is_none());
    }

    #[test]
    fn relazified_scanner_drops_derived_state_but_not_behaviour() {
        let scanner = simple_scanner(&["if", "then"]);
        let input = "if x1 then 42 -- note\n";
        scanner.tokenize(input).unwrap();
        let warm_bytes = scanner.resident_bytes();
        assert!(warm_bytes > 0);
        let cold = scanner.relazified();
        // Eviction dropped the materialised states (only the start state
        // survives a cold compile).
        assert!(cold.resident_bytes() < warm_bytes);
        assert_eq!(cold.dfa_stats().states, 1);
        // ...but behaviour is unchanged: laziness rebuilds on demand.
        assert_eq!(cold.tokenize(input).unwrap(), scanner.tokenize(input).unwrap());
        // Lifetime counters survive the eviction.
        assert_eq!(cold.rebuilds(), scanner.rebuilds());
        assert_eq!(cold.carried_states(), scanner.carried_states());
        // Accounting rows are pointer-keyed and sum to the total.
        let rows = scanner.snapshot_accounting();
        assert_eq!(rows.iter().map(|&(_, b)| b).sum::<usize>(), warm_bytes);
    }

    #[test]
    fn definition_accessors() {
        let scanner = simple_scanner(&["+"]);
        assert!(scanner.definitions().iter().any(|d| d.name == "+"));
        assert!(scanner.definitions().iter().any(|d| d.layout));
        assert_eq!(scanner.rebuilds(), 0);
    }
}
