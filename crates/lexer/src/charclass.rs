//! Character classes in the style of SDF's lexical syntax (`[a-zA-Z0-9]`,
//! `~[\n]`, ...).

use std::fmt;

use serde::{Deserialize, Serialize};

/// A set of characters, represented as inclusive ranges plus an optional
/// negation flag.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default, Serialize, Deserialize)]
pub struct CharClass {
    ranges: Vec<(char, char)>,
    negated: bool,
}

impl CharClass {
    /// The empty class (matches nothing).
    pub fn empty() -> Self {
        Self::default()
    }

    /// A class containing a single character.
    pub fn single(c: char) -> Self {
        CharClass {
            ranges: vec![(c, c)],
            negated: false,
        }
    }

    /// A class containing one inclusive range.
    pub fn range(lo: char, hi: char) -> Self {
        assert!(lo <= hi, "invalid character range {lo:?}..{hi:?}");
        CharClass {
            ranges: vec![(lo, hi)],
            negated: false,
        }
    }

    /// Builds a class from several inclusive ranges.
    pub fn from_ranges(ranges: impl IntoIterator<Item = (char, char)>) -> Self {
        let mut class = CharClass::empty();
        for (lo, hi) in ranges {
            class = class.union_range(lo, hi);
        }
        class
    }

    /// Adds a range to the class.
    pub fn union_range(mut self, lo: char, hi: char) -> Self {
        assert!(lo <= hi, "invalid character range {lo:?}..{hi:?}");
        assert!(!self.negated, "cannot extend a negated class");
        self.ranges.push((lo, hi));
        self.normalise();
        self
    }

    /// Adds a single character to the class.
    pub fn union_char(self, c: char) -> Self {
        self.union_range(c, c)
    }

    /// The complement of this class (with respect to all of Unicode).
    pub fn negate(mut self) -> Self {
        self.negated = !self.negated;
        self
    }

    /// `true` if `c` belongs to the class.
    pub fn contains(&self, c: char) -> bool {
        let inside = self.ranges.iter().any(|&(lo, hi)| lo <= c && c <= hi);
        inside != self.negated
    }

    /// `true` if the class matches no character at all.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty() && !self.negated
    }

    /// `true` if this is a negated class.
    pub fn is_negated(&self) -> bool {
        self.negated
    }

    /// The (non-negated) ranges of the class.
    pub fn ranges(&self) -> &[(char, char)] {
        &self.ranges
    }

    /// The usual ASCII identifier-start class `[a-zA-Z_]`.
    pub fn ident_start() -> Self {
        Self::from_ranges([('a', 'z'), ('A', 'Z'), ('_', '_')])
    }

    /// The usual ASCII identifier-continue class `[a-zA-Z0-9_-]`.
    pub fn ident_continue() -> Self {
        Self::from_ranges([('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_'), ('-', '-')])
    }

    /// ASCII digits `[0-9]`.
    pub fn digit() -> Self {
        Self::range('0', '9')
    }

    /// ASCII whitespace (space, tab, newline, carriage return, form feed).
    pub fn whitespace() -> Self {
        Self::from_ranges([(' ', ' '), ('\t', '\t'), ('\n', '\n'), ('\r', '\r'), ('\u{c}', '\u{c}')])
    }

    /// Parses an SDF-like character-class body, e.g. `a-zA-Z0-9\-_`.
    /// The surrounding brackets and optional leading `~` are handled by the
    /// caller ([`CharClass::parse`]).
    fn parse_body(body: &str) -> Result<Self, String> {
        let mut chars = body.chars().peekable();
        let mut class = CharClass::empty();
        while let Some(c) = chars.next() {
            let lo = if c == '\\' {
                unescape(chars.next().ok_or("dangling escape in character class")?)
            } else {
                c
            };
            if chars.peek() == Some(&'-') {
                // Possible range; a trailing `-` is a literal dash.
                let mut look = chars.clone();
                look.next();
                match look.peek() {
                    Some(&next) if next != ']' => {
                        chars.next(); // consume '-'
                        let hi_raw = chars.next().expect("peeked");
                        let hi = if hi_raw == '\\' {
                            unescape(chars.next().ok_or("dangling escape in character class")?)
                        } else {
                            hi_raw
                        };
                        if lo > hi {
                            return Err(format!("invalid range {lo}-{hi} in character class"));
                        }
                        class = class.union_range(lo, hi);
                        continue;
                    }
                    _ => {}
                }
            }
            class = class.union_char(lo);
        }
        Ok(class)
    }

    /// Parses an SDF-like character class such as `[a-zA-Z]`, `[0-9\-]` or
    /// `~[\n]` (negation).
    pub fn parse(text: &str) -> Result<Self, String> {
        let (negated, rest) = match text.strip_prefix('~') {
            Some(rest) => (true, rest),
            None => (false, text),
        };
        let body = rest
            .strip_prefix('[')
            .and_then(|r| r.strip_suffix(']'))
            .ok_or_else(|| format!("character class must be bracketed: `{text}`"))?;
        let class = Self::parse_body(body)?;
        Ok(if negated { class.negate() } else { class })
    }

    fn normalise(&mut self) {
        self.ranges.sort_unstable();
        let mut merged: Vec<(char, char)> = Vec::with_capacity(self.ranges.len());
        for &(lo, hi) in &self.ranges {
            match merged.last_mut() {
                Some((_, prev_hi)) if lo as u32 <= *prev_hi as u32 + 1 => {
                    if hi > *prev_hi {
                        *prev_hi = hi;
                    }
                }
                _ => merged.push((lo, hi)),
            }
        }
        self.ranges = merged;
    }
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        'f' => '\u{c}',
        other => other,
    }
}

impl fmt::Display for CharClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.negated {
            write!(f, "~")?;
        }
        write!(f, "[")?;
        for &(lo, hi) in &self.ranges {
            if lo == hi {
                write!(f, "{}", escape_for_display(lo))?;
            } else {
                write!(f, "{}-{}", escape_for_display(lo), escape_for_display(hi))?;
            }
        }
        write!(f, "]")
    }
}

fn escape_for_display(c: char) -> String {
    match c {
        '\n' => "\\n".to_owned(),
        '\t' => "\\t".to_owned(),
        '\r' => "\\r".to_owned(),
        '-' => "\\-".to_owned(),
        ']' => "\\]".to_owned(),
        other => other.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_and_range_membership() {
        let c = CharClass::range('a', 'f');
        assert!(c.contains('a'));
        assert!(c.contains('f'));
        assert!(!c.contains('g'));
        assert!(CharClass::single('+').contains('+'));
        assert!(!CharClass::single('+').contains('-'));
    }

    #[test]
    fn union_merges_adjacent_ranges() {
        let c = CharClass::range('a', 'm').union_range('n', 'z');
        assert_eq!(c.ranges().len(), 1);
        assert!(c.contains('q'));
        let d = CharClass::range('a', 'c').union_range('x', 'z');
        assert_eq!(d.ranges().len(), 2);
    }

    #[test]
    fn negation_flips_membership() {
        let c = CharClass::range('0', '9').negate();
        assert!(!c.contains('5'));
        assert!(c.contains('a'));
        assert!(c.is_negated());
        assert!(!c.negate().is_negated());
    }

    #[test]
    fn parse_sdf_style_classes() {
        let letters = CharClass::parse("[a-zA-Z]").unwrap();
        assert!(letters.contains('q'));
        assert!(letters.contains('Q'));
        assert!(!letters.contains('1'));

        let ident = CharClass::parse("[a-zA-Z0-9\\-_]").unwrap();
        assert!(ident.contains('-'));
        assert!(ident.contains('_'));
        assert!(ident.contains('7'));

        let not_newline = CharClass::parse("~[\\n]").unwrap();
        assert!(not_newline.contains('x'));
        assert!(!not_newline.contains('\n'));

        let ws = CharClass::parse("[ \\t\\n\\r\\f]").unwrap();
        assert!(ws.contains(' '));
        assert!(ws.contains('\n'));
        assert!(!ws.contains('a'));
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(CharClass::parse("a-z").is_err());
        assert!(CharClass::parse("[z-a]").is_err());
        assert!(CharClass::parse("[abc\\").is_err());
    }

    #[test]
    fn trailing_dash_is_literal() {
        let c = CharClass::parse("[0-9-]").unwrap();
        assert!(c.contains('-'));
        assert!(c.contains('3'));
    }

    #[test]
    fn display_round_trips_through_parse() {
        let c = CharClass::parse("[a-z0-9]").unwrap();
        let printed = c.to_string();
        let reparsed = CharClass::parse(&printed).unwrap();
        assert_eq!(c, reparsed);
        assert!(CharClass::parse("~[\\n]").unwrap().to_string().starts_with('~'));
    }

    #[test]
    fn builtin_classes() {
        assert!(CharClass::ident_start().contains('_'));
        assert!(!CharClass::ident_start().contains('1'));
        assert!(CharClass::ident_continue().contains('1'));
        assert!(CharClass::digit().contains('0'));
        assert!(CharClass::whitespace().contains('\t'));
        assert!(CharClass::empty().is_empty());
        assert!(!CharClass::empty().contains('x'));
    }
}
