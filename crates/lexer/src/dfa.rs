//! Lazy subset construction: the scanner-generator analogue of the lazy
//! parser generator.
//!
//! The companion report \[HKR87a\] applies the same laziness to lexical
//! scanners (ISG): instead of determinising the NFA up front, DFA states
//! (sets of NFA states) and their transitions are created the first time
//! the scanner needs them and memoised for later use. Scanning text that
//! exercises only part of the lexical syntax therefore only ever builds
//! that part of the DFA — and after a change to the token definitions, the
//! DFA cache is simply discarded while the (cheap) NFA is rebuilt, so new
//! DFA states again appear by need.

use std::collections::HashMap;

use crate::nfa::{Nfa, TokenId};

/// Work counters of a lazy DFA; the interesting quantity is how few states
/// and transitions are materialised compared to the full subset
/// construction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DfaStats {
    /// DFA states materialised so far.
    pub states: usize,
    /// Distinct `(state, character)` transitions memoised so far.
    pub transitions: usize,
    /// Transition-cache hits during scanning.
    pub cache_hits: usize,
    /// Transition-cache misses (each one ran a subset-construction step).
    pub cache_misses: usize,
}

#[derive(Clone, Debug)]
struct LazyDfaState {
    /// The NFA states this DFA state represents (sorted).
    nfa_states: Vec<usize>,
    /// Memoised transitions, per character actually encountered.
    transitions: HashMap<char, Option<usize>>,
    /// Highest-priority token accepted in this state.
    accept: Option<TokenId>,
}

/// A lazily determinised DFA over an [`Nfa`].
#[derive(Clone, Debug)]
pub struct LazyDfa {
    nfa: Nfa,
    states: Vec<LazyDfaState>,
    index: HashMap<Vec<usize>, usize>,
    stats: DfaStats,
}

impl LazyDfa {
    /// Wraps an NFA; only the start DFA state is created.
    pub fn new(nfa: Nfa) -> Self {
        let mut dfa = LazyDfa {
            nfa,
            states: Vec::new(),
            index: HashMap::new(),
            stats: DfaStats::default(),
        };
        let start_set = dfa.nfa.epsilon_closure(&[dfa.nfa.start()]);
        dfa.intern(start_set);
        dfa
    }

    /// The underlying NFA.
    pub fn nfa(&self) -> &Nfa {
        &self.nfa
    }

    /// Work counters.
    pub fn stats(&self) -> DfaStats {
        self.stats
    }

    /// Number of DFA states materialised so far.
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    fn intern(&mut self, nfa_states: Vec<usize>) -> usize {
        if let Some(&id) = self.index.get(&nfa_states) {
            return id;
        }
        let accept = self.nfa.accepting_token(&nfa_states);
        let id = self.states.len();
        self.index.insert(nfa_states.clone(), id);
        self.states.push(LazyDfaState {
            nfa_states,
            transitions: HashMap::new(),
            accept,
        });
        self.stats.states += 1;
        id
    }

    /// The transition from DFA state `state` on character `c`, computing
    /// and memoising it if necessary. `None` is the dead state.
    pub fn step(&mut self, state: usize, c: char) -> Option<usize> {
        if let Some(&cached) = self.states[state].transitions.get(&c) {
            self.stats.cache_hits += 1;
            return cached;
        }
        self.stats.cache_misses += 1;
        let next_set = self.nfa.step(&self.states[state].nfa_states, c);
        let result = if next_set.is_empty() {
            None
        } else {
            Some(self.intern(next_set))
        };
        self.states[state].transitions.insert(c, result);
        self.stats.transitions += 1;
        result
    }

    /// The token accepted in `state`, if any.
    pub fn accept(&self, state: usize) -> Option<TokenId> {
        self.states[state].accept
    }

    /// The longest prefix of `input` starting at `start` that matches a
    /// token, with the token id.
    pub fn longest_match(&mut self, input: &[char], start: usize) -> Option<(usize, TokenId)> {
        let mut state = 0usize;
        let mut best = self.accept(state).map(|t| (0usize, t));
        let mut len = 0usize;
        while let Some(&c) = input.get(start + len) {
            match self.step(state, c) {
                Some(next) => {
                    state = next;
                    len += 1;
                    if let Some(t) = self.accept(state) {
                        best = Some((len, t));
                    }
                }
                None => break,
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regex::Regex;

    fn chars(s: &str) -> Vec<char> {
        s.chars().collect()
    }

    fn sample_dfa() -> LazyDfa {
        let ident = Regex::parse("[a-zA-Z] [a-zA-Z0-9_]*").unwrap();
        let number = Regex::parse("[0-9]+").unwrap();
        let kw_if = Regex::literal("if");
        LazyDfa::new(Nfa::build(&[kw_if, ident, number]))
    }

    #[test]
    fn starts_with_a_single_state() {
        let dfa = sample_dfa();
        assert_eq!(dfa.num_states(), 1);
        assert_eq!(dfa.stats().transitions, 0);
    }

    #[test]
    fn matches_agree_with_the_nfa_reference() {
        let mut dfa = sample_dfa();
        for text in ["if", "iffy", "x1_y", "42", "007 agent", "+nope", ""] {
            let input = chars(text);
            assert_eq!(
                dfa.longest_match(&input, 0),
                dfa.nfa().clone().longest_match(&input),
                "input `{text}`"
            );
        }
    }

    #[test]
    fn states_and_transitions_materialise_on_demand() {
        let mut dfa = sample_dfa();
        dfa.longest_match(&chars("abc"), 0);
        let after_ident = dfa.num_states();
        assert!(after_ident >= 2);
        let transitions_after_ident = dfa.stats().transitions;
        // Scanning digits needs new states/transitions...
        dfa.longest_match(&chars("123"), 0);
        assert!(dfa.num_states() > 0);
        assert!(dfa.stats().transitions > transitions_after_ident);
        // ...but re-scanning the same kind of text hits the cache.
        let misses = dfa.stats().cache_misses;
        dfa.longest_match(&chars("abc"), 0);
        assert_eq!(dfa.stats().cache_misses, misses);
        assert!(dfa.stats().cache_hits > 0);
    }

    #[test]
    fn longest_match_respects_start_offset() {
        let mut dfa = sample_dfa();
        let input = chars("xy 42");
        assert_eq!(dfa.longest_match(&input, 3), Some((2, 2)));
        assert_eq!(dfa.longest_match(&input, 2), None); // space matches nothing
    }

    #[test]
    fn keyword_beats_identifier_on_equal_length() {
        let mut dfa = sample_dfa();
        assert_eq!(dfa.longest_match(&chars("if("), 0), Some((2, 0)));
        assert_eq!(dfa.longest_match(&chars("ifx"), 0), Some((3, 1)));
    }
}
