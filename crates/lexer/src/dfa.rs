//! Lazy subset construction: the scanner-generator analogue of the lazy
//! parser generator.
//!
//! The companion report \[HKR87a\] applies the same laziness to lexical
//! scanners (ISG): instead of determinising the NFA up front, DFA states
//! (sets of NFA states) and their transitions are created the first time
//! the scanner needs them and memoised for later use. Scanning text that
//! exercises only part of the lexical syntax therefore only ever builds
//! that part of the DFA — and after a change to the token definitions, the
//! DFA cache is simply discarded while the (cheap) NFA is rebuilt, so new
//! DFA states again appear by need.
//!
//! ## Shared scanning
//!
//! Like the item-set graph, the lazy DFA follows the read/expand split:
//! [`LazyDfa::step`] and [`LazyDfa::longest_match`] take `&self`, so any
//! number of threads can scan against one DFA at the same time. The
//! memoised transition cache lives behind an `RwLock` — a cache hit is a
//! read lock (concurrent readers never block each other), and only a miss
//! (one subset-construction step) takes the write lock.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::RwLock;

use crate::nfa::{Nfa, TokenId};

/// Work counters of a lazy DFA; the interesting quantity is how few states
/// and transitions are materialised compared to the full subset
/// construction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DfaStats {
    /// DFA states materialised so far.
    pub states: usize,
    /// Distinct `(state, character)` transitions memoised so far.
    pub transitions: usize,
    /// Transition-cache hits during scanning.
    pub cache_hits: usize,
    /// Transition-cache misses (each one ran a subset-construction step).
    pub cache_misses: usize,
}

#[derive(Clone, Debug)]
struct LazyDfaState {
    /// The NFA states this DFA state represents (sorted).
    nfa_states: Vec<usize>,
    /// Memoised transitions, per character actually encountered.
    transitions: HashMap<char, Option<usize>>,
    /// Highest-priority token accepted in this state.
    accept: Option<TokenId>,
}

/// The lock-guarded, lazily materialised part of the DFA.
#[derive(Clone, Debug)]
struct DfaCache {
    states: Vec<LazyDfaState>,
    index: HashMap<Vec<usize>, usize>,
    /// Counters updated under the write lock (misses, states,
    /// transitions); cache hits are counted in the atomic outside.
    stats: DfaStats,
}

/// A lazily determinised DFA over an [`Nfa`], shareable across threads.
#[derive(Debug)]
pub struct LazyDfa {
    nfa: Nfa,
    cache: RwLock<DfaCache>,
    /// Cache hits happen under the read lock, so they are counted with a
    /// relaxed atomic instead of a write.
    cache_hits: AtomicUsize,
}

impl Clone for LazyDfa {
    fn clone(&self) -> Self {
        LazyDfa {
            nfa: self.nfa.clone(),
            cache: RwLock::new(self.cache.read().unwrap().clone()),
            cache_hits: AtomicUsize::new(self.cache_hits.load(Ordering::Relaxed)),
        }
    }
}

impl LazyDfa {
    /// Wraps an NFA; only the start DFA state is created.
    pub fn new(nfa: Nfa) -> Self {
        let mut cache = DfaCache {
            states: Vec::new(),
            index: HashMap::new(),
            stats: DfaStats::default(),
        };
        let start_set = nfa.epsilon_closure(&[nfa.start()]);
        Self::intern(&nfa, &mut cache, start_set);
        LazyDfa {
            nfa,
            cache: RwLock::new(cache),
            cache_hits: AtomicUsize::new(0),
        }
    }

    /// The underlying NFA.
    pub fn nfa(&self) -> &Nfa {
        &self.nfa
    }

    /// Work counters.
    pub fn stats(&self) -> DfaStats {
        let mut stats = self.cache.read().unwrap().stats;
        stats.cache_hits += self.cache_hits.load(Ordering::Relaxed);
        stats
    }

    /// Number of DFA states materialised so far.
    pub fn num_states(&self) -> usize {
        self.cache.read().unwrap().states.len()
    }

    fn intern(nfa: &Nfa, cache: &mut DfaCache, nfa_states: Vec<usize>) -> usize {
        if let Some(&id) = cache.index.get(&nfa_states) {
            return id;
        }
        let accept = nfa.accepting_token(&nfa_states);
        let id = cache.states.len();
        cache.index.insert(nfa_states.clone(), id);
        cache.states.push(LazyDfaState {
            nfa_states,
            transitions: HashMap::new(),
            accept,
        });
        cache.stats.states += 1;
        id
    }

    /// The transition from DFA state `state` on character `c`, together
    /// with the token accepted in the *target* state, computing and
    /// memoising the transition if necessary. `None` is the dead state.
    fn step_with_accept(&self, state: usize, c: char) -> Option<(usize, Option<TokenId>)> {
        // Fast path: a memoised transition under the shared read lock.
        {
            let cache = self.cache.read().unwrap();
            if let Some(&cached) = cache.states[state].transitions.get(&c) {
                self.cache_hits.fetch_add(1, Ordering::Relaxed);
                return cached.map(|next| (next, cache.states[next].accept));
            }
        }
        // Miss: run one subset-construction step under the write lock.
        let mut cache = self.cache.write().unwrap();
        // Double-check: another thread may have filled the entry while we
        // were waiting for the write lock.
        if let Some(&cached) = cache.states[state].transitions.get(&c) {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            return cached.map(|next| (next, cache.states[next].accept));
        }
        cache.stats.cache_misses += 1;
        let next_set = self.nfa.step(&cache.states[state].nfa_states, c);
        let result = if next_set.is_empty() {
            None
        } else {
            Some(Self::intern(&self.nfa, &mut cache, next_set))
        };
        cache.states[state].transitions.insert(c, result);
        cache.stats.transitions += 1;
        result.map(|next| (next, cache.states[next].accept))
    }

    /// The transition from DFA state `state` on character `c`, computing
    /// and memoising it if necessary. `None` is the dead state.
    pub fn step(&self, state: usize, c: char) -> Option<usize> {
        self.step_with_accept(state, c).map(|(next, _)| next)
    }

    /// The token accepted in `state`, if any.
    pub fn accept(&self, state: usize) -> Option<TokenId> {
        self.cache.read().unwrap().states[state].accept
    }

    /// The longest prefix of `input` starting at `start` that matches a
    /// token, with the token id.
    pub fn longest_match(&self, input: &[char], start: usize) -> Option<(usize, TokenId)> {
        let mut state = 0usize;
        let mut best = self.accept(state).map(|t| (0usize, t));
        let mut len = 0usize;
        while let Some(&c) = input.get(start + len) {
            match self.step_with_accept(state, c) {
                Some((next, accept)) => {
                    state = next;
                    len += 1;
                    if let Some(t) = accept {
                        best = Some((len, t));
                    }
                }
                None => break,
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regex::Regex;

    fn chars(s: &str) -> Vec<char> {
        s.chars().collect()
    }

    fn sample_dfa() -> LazyDfa {
        let ident = Regex::parse("[a-zA-Z] [a-zA-Z0-9_]*").unwrap();
        let number = Regex::parse("[0-9]+").unwrap();
        let kw_if = Regex::literal("if");
        LazyDfa::new(Nfa::build(&[kw_if, ident, number]))
    }

    #[test]
    fn starts_with_a_single_state() {
        let dfa = sample_dfa();
        assert_eq!(dfa.num_states(), 1);
        assert_eq!(dfa.stats().transitions, 0);
    }

    #[test]
    fn matches_agree_with_the_nfa_reference() {
        let dfa = sample_dfa();
        for text in ["if", "iffy", "x1_y", "42", "007 agent", "+nope", ""] {
            let input = chars(text);
            assert_eq!(
                dfa.longest_match(&input, 0),
                dfa.nfa().clone().longest_match(&input),
                "input `{text}`"
            );
        }
    }

    #[test]
    fn states_and_transitions_materialise_on_demand() {
        let dfa = sample_dfa();
        dfa.longest_match(&chars("abc"), 0);
        let after_ident = dfa.num_states();
        assert!(after_ident >= 2);
        let transitions_after_ident = dfa.stats().transitions;
        // Scanning digits needs new states/transitions...
        dfa.longest_match(&chars("123"), 0);
        assert!(dfa.num_states() > 0);
        assert!(dfa.stats().transitions > transitions_after_ident);
        // ...but re-scanning the same kind of text hits the cache.
        let misses = dfa.stats().cache_misses;
        dfa.longest_match(&chars("abc"), 0);
        assert_eq!(dfa.stats().cache_misses, misses);
        assert!(dfa.stats().cache_hits > 0);
    }

    #[test]
    fn longest_match_respects_start_offset() {
        let dfa = sample_dfa();
        let input = chars("xy 42");
        assert_eq!(dfa.longest_match(&input, 3), Some((2, 2)));
        assert_eq!(dfa.longest_match(&input, 2), None); // space matches nothing
    }

    #[test]
    fn keyword_beats_identifier_on_equal_length() {
        let dfa = sample_dfa();
        assert_eq!(dfa.longest_match(&chars("if("), 0), Some((2, 0)));
        assert_eq!(dfa.longest_match(&chars("ifx"), 0), Some((3, 1)));
    }

    #[test]
    fn concurrent_scans_share_one_lazily_built_dfa() {
        let dfa = sample_dfa();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for text in ["if", "iffy", "x1_y", "42", "agent 007"] {
                        let input = chars(text);
                        assert_eq!(
                            dfa.longest_match(&input, 0),
                            dfa.nfa().clone().longest_match(&input),
                            "input `{text}`"
                        );
                    }
                });
            }
        });
        // All threads materialised one shared cache.
        assert!(dfa.stats().cache_hits > 0);
        let clone = dfa.clone();
        assert_eq!(clone.num_states(), dfa.num_states());
    }
}
