//! Lazy subset construction: the scanner-generator analogue of the lazy
//! parser generator.
//!
//! The companion report \[HKR87a\] applies the same laziness to lexical
//! scanners (ISG): instead of determinising the NFA up front, DFA states
//! (sets of NFA states) and their transitions are created the first time
//! the scanner needs them and memoised for later use. Scanning text that
//! exercises only part of the lexical syntax therefore only ever builds
//! that part of the DFA — and after a change to the token definitions, the
//! DFA cache is simply discarded while the (cheap) NFA is rebuilt, so new
//! DFA states again appear by need.
//!
//! ## Shared scanning
//!
//! Like the item-set graph, the lazy DFA follows the read/expand split:
//! [`LazyDfa::step`] and [`LazyDfa::longest_match`] take `&self`, so any
//! number of threads can scan against one DFA at the same time — and like
//! the parser's `ACTION`/`GOTO`, the hot path is served from **pinned
//! snapshots**: the writer publishes an immutable [`DfaSnapshot`]
//! (`Arc`-shared) whenever it materialises a state or transition, a
//! scanner pins one snapshot per `tokenize` call, and every per-character
//! step is served from immutable data with no locks or atomics at all.
//! Only a miss (one subset-construction step) takes the writer's lock,
//! republishes, and refreshes the pin.
//!
//! ## The dense fast path and its lazy fallback
//!
//! Each published snapshot state carries two views of the same memoised
//! transitions, split by character class:
//!
//! * **Dense byte rows** — a `state × 256` table indexed by the scalar
//!   value, so the Latin-1 hot path (in practice: all of ASCII source
//!   text) is a single array load per character. A bitmask of the bytes
//!   that transition a state back to itself additionally powers a
//!   memchr-style **skip loop**: whitespace, identifier tails and literal
//!   bodies are swallowed as whole runs, with the longest-match candidate
//!   updated once per run instead of once per character.
//! * **The lazy `char` map** — the fallback serving characters `≥ U+0100`
//!   and any byte whose transition has not been materialised yet (a dense
//!   entry of "unknown" means exactly "absent from the map").
//!
//! The dense rows are a *cache of the cache*: they are derived from the
//! memoised map whenever a snapshot state is (re)published, so laziness is
//! untouched — unknown entries still funnel into the one-step
//! subset-construction writer, which republishes the touched state with a
//! refreshed row. Definition changes keep the PR 4 carry-over: states
//! whose published view survives an edit keep their dense rows verbatim
//! (they share the same per-state `Arc`), and only invalidated states are
//! re-derived — and re-densified — by need.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};

use crate::nfa::{Nfa, TokenId};
use crate::regex::Regex;

/// Work counters of a lazy DFA; the interesting quantity is how few states
/// and transitions are materialised compared to the full subset
/// construction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DfaStats {
    /// DFA states materialised so far.
    pub states: usize,
    /// Distinct `(state, character)` transitions memoised so far.
    pub transitions: usize,
    /// Transition-cache hits during scanning.
    pub cache_hits: usize,
    /// Transition-cache misses (each one ran a subset-construction step).
    pub cache_misses: usize,
    /// Materialised DFA states carried over across token-definition
    /// changes instead of being discarded and re-derived (cumulative over
    /// all [`LazyDfa::add_token`] / [`LazyDfa::remove_token`] calls).
    pub carried_over: usize,
    /// Materialised DFA states invalidated by token-definition changes
    /// (their NFA sets intersected a changed fragment, or they were the
    /// start state, whose closure every definition change affects).
    pub invalidated: usize,
    /// Dense `state × 256` byte rows built while publishing snapshot
    /// states (one per snapshot-state construction; carried-over states
    /// keep their row and are not recounted).
    pub dense_rows_built: usize,
    /// Characters consumed through the dense byte-row fast path (single
    /// array-indexed steps).
    pub dense_bytes: usize,
    /// Characters consumed by the self-transition skip loop (whitespace /
    /// identifier / literal runs swallowed without per-character state
    /// re-dispatch).
    pub skip_loop_bytes: usize,
}

#[derive(Clone, Debug)]
struct LazyDfaState {
    /// The NFA states this DFA state represents (sorted).
    nfa_states: Vec<usize>,
    /// Memoised transitions, per character actually encountered.
    transitions: HashMap<char, Option<usize>>,
    /// Highest-priority token accepted in this state.
    accept: Option<TokenId>,
    /// `true` once a definition change invalidated this state. Dead slots
    /// are never stepped into again (transitions of carried-over states
    /// cannot target them — see [`LazyDfa::remove_token`]); they linger as
    /// garbage until the owner rebuilds.
    dead: bool,
}

/// The lock-guarded, lazily materialised part of the DFA.
#[derive(Clone, Debug)]
struct DfaCache {
    states: Vec<LazyDfaState>,
    index: HashMap<Vec<usize>, usize>,
    /// Counters updated under the write lock (misses, states,
    /// transitions); cache hits are counted in the atomic outside.
    stats: DfaStats,
    /// Dead state slots (see `LazyDfaState::dead`).
    garbage: usize,
}

/// Dense byte-row encoding: `0` = not yet materialised (fall through to
/// the miss path), `1` = the dead state, `n ≥ 2` = transition to DFA state
/// `n - 2`.
const DENSE_UNKNOWN: u32 = 0;
const DENSE_DEAD: u32 = 1;

/// The published read-view of one DFA state: its memoised transitions and
/// accept token, immutable and `Arc`-shared between the cache and any
/// number of pinned snapshots.
///
/// Alongside the `char`-keyed map, every snapshot state carries a **dense
/// byte row**: a `256`-entry table indexed directly by the character's
/// scalar value, so the Latin-1 hot path is one array load instead of a
/// hash-map probe. The row is a dense *cache of the map* — entry `0` means
/// "not memoised yet", exactly the map's missing-key case — so laziness is
/// preserved: unknown bytes still funnel into the subset-construction miss
/// path, which republishes this state with a refreshed row. A bitmask of
/// the bytes that transition back to this same state additionally powers
/// the skip loop in [`LazyDfa::longest_match_pinned`].
#[derive(Debug)]
struct SnapshotState {
    /// Dense byte transitions for scalar values `< 256` (see
    /// [`DENSE_UNKNOWN`] / [`DENSE_DEAD`]); characters `≥ U+0100` use the
    /// `transitions` map.
    dense: Box<[u32; 256]>,
    /// Bitmask (4 × 64 bits) of the bytes whose dense transition loops
    /// back to this state — the self-transition runs the skip loop eats.
    self_mask: [u64; 4],
    /// Memoised transitions (`None` = the dead state). A character absent
    /// from the map has simply not been stepped on yet — a *miss*, not a
    /// dead transition.
    transitions: HashMap<char, Option<usize>>,
    /// Highest-priority token accepted in this state.
    accept: Option<TokenId>,
}

impl SnapshotState {
    /// Builds the published view of state `id`, materialising its dense
    /// byte row and self-transition mask from the memoised transitions.
    fn build(id: usize, transitions: &HashMap<char, Option<usize>>, accept: Option<TokenId>) -> Self {
        let mut dense = Box::new([DENSE_UNKNOWN; 256]);
        let mut self_mask = [0u64; 4];
        for (&c, &target) in transitions {
            let b = c as u32;
            if b < 256 {
                dense[b as usize] = match target {
                    None => DENSE_DEAD,
                    Some(next) => next as u32 + 2,
                };
                if target == Some(id) {
                    self_mask[(b >> 6) as usize] |= 1u64 << (b & 63);
                }
            }
        }
        SnapshotState {
            dense,
            self_mask,
            transitions: transitions.clone(),
            accept,
        }
    }

    /// Whether byte `b` (scalar value `< 256`) self-transitions here.
    #[inline]
    fn self_loops(&self, b: usize) -> bool {
        self.self_mask[b >> 6] & (1u64 << (b & 63)) != 0
    }

    /// Modeled resident bytes of this published state: its `Arc`
    /// allocation, the dense 256-entry byte row, and the memoised `char`
    /// map (per-entry constant folding in the hash-table overhead). Like
    /// the parser-side accounting, the model is self-consistent rather
    /// than allocator-exact.
    fn bytes(&self) -> usize {
        16 // Arc header (strong + weak counts)
            + std::mem::size_of::<SnapshotState>()
            + 256 * std::mem::size_of::<u32>()
            + self.transitions.len()
                * (std::mem::size_of::<(char, Option<usize>)>() + 16)
    }
}

/// An immutable snapshot of every materialised DFA state — the scanner
/// analogue of the parser's published table snapshot. A reader pins one
/// `Arc<DfaSnapshot>` per `tokenize` call and serves every per-character
/// step from it without locking; misses funnel into the cache's writer,
/// which republishes, and the reader refreshes its pin.
///
/// Pinned reads stay sound because the materialised part of a DFA only
/// ever *grows*: a definition change does not mutate the cache, it
/// replaces the whole [`LazyDfa`] (the scanner rebuilds), so a pinned
/// snapshot can be stale only in the sense of missing entries — never in
/// the sense of wrong ones.
#[derive(Debug, Default)]
pub struct DfaSnapshot {
    states: Vec<Arc<SnapshotState>>,
}

impl DfaSnapshot {
    /// Number of DFA states visible in this snapshot.
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// `(storage address, modeled bytes)` of every published state.
    /// Scanners that share carried-over states across epochs report the
    /// *same* address for them, so a registry can sum resident bytes
    /// deduplicated by pointer identity.
    pub fn state_accounting(&self) -> Vec<(usize, usize)> {
        self.states
            .iter()
            .map(|s| (Arc::as_ptr(s) as usize, s.bytes()))
            .collect()
    }

    /// Total modeled resident bytes of this snapshot's states.
    pub fn resident_bytes(&self) -> usize {
        self.states.iter().map(|s| s.bytes()).sum()
    }
}

/// A lazily determinised DFA over an [`Nfa`], shareable across threads.
#[derive(Debug)]
pub struct LazyDfa {
    nfa: Nfa,
    cache: RwLock<DfaCache>,
    /// The current published snapshot; replaced (copy-on-write over the
    /// per-state `Arc`s) on every cache miss.
    published: RwLock<Arc<DfaSnapshot>>,
    /// Cache hits are flushed here once per `longest_match`/`step` call
    /// (not per character), so the pinned hot path touches no atomics.
    cache_hits: AtomicUsize,
    /// Characters consumed through the dense byte rows; flushed once per
    /// `longest_match` call like `cache_hits`.
    dense_bytes: AtomicUsize,
    /// Characters consumed by the self-transition skip loop; flushed once
    /// per `longest_match` call like `cache_hits`.
    skip_loop_bytes: AtomicUsize,
    /// Measurement knob: when set, `longest_match_pinned` ignores the
    /// dense rows and runs the lazy `char`-map path for every character,
    /// so benches can report the dense speedup on identical hardware.
    dense_disabled: AtomicBool,
}

impl Clone for LazyDfa {
    fn clone(&self) -> Self {
        let mut cache = self.cache.read().unwrap().clone();
        let published = Self::snapshot_of(&mut cache);
        LazyDfa {
            nfa: self.nfa.clone(),
            cache: RwLock::new(cache),
            published: RwLock::new(published),
            cache_hits: AtomicUsize::new(self.cache_hits.load(Ordering::Relaxed)),
            dense_bytes: AtomicUsize::new(self.dense_bytes.load(Ordering::Relaxed)),
            skip_loop_bytes: AtomicUsize::new(self.skip_loop_bytes.load(Ordering::Relaxed)),
            dense_disabled: AtomicBool::new(self.dense_disabled.load(Ordering::Relaxed)),
        }
    }
}

impl LazyDfa {
    /// Wraps an NFA; only the start DFA state is created.
    pub fn new(nfa: Nfa) -> Self {
        let mut cache = DfaCache {
            states: Vec::new(),
            index: HashMap::new(),
            stats: DfaStats::default(),
            garbage: 0,
        };
        let start_set = nfa.epsilon_closure(&[nfa.start()]);
        Self::intern(&nfa, &mut cache, start_set);
        let published = Self::snapshot_of(&mut cache);
        LazyDfa {
            nfa,
            cache: RwLock::new(cache),
            published: RwLock::new(published),
            cache_hits: AtomicUsize::new(0),
            dense_bytes: AtomicUsize::new(0),
            skip_loop_bytes: AtomicUsize::new(0),
            dense_disabled: AtomicBool::new(false),
        }
    }

    /// Builds a full published snapshot of a cache (used at construction
    /// and by `Clone`; misses update the current snapshot incrementally).
    fn snapshot_of(cache: &mut DfaCache) -> Arc<DfaSnapshot> {
        cache.stats.dense_rows_built += cache.states.len();
        Arc::new(DfaSnapshot {
            states: cache
                .states
                .iter()
                .enumerate()
                .map(|(i, s)| Arc::new(SnapshotState::build(i, &s.transitions, s.accept)))
                .collect(),
        })
    }

    /// The current published snapshot. Pin one per scan and serve every
    /// per-character step from it; refresh on a miss (see
    /// [`LazyDfa::longest_match_pinned`]).
    pub fn snapshot(&self) -> Arc<DfaSnapshot> {
        self.published.read().unwrap().clone()
    }

    /// Republishes the snapshot after a miss materialised new entries:
    /// copy the per-state `Arc` vector, append any newly interned states,
    /// and replace the one state whose transition map grew. Called with
    /// the cache write lock held, so publications are serialized.
    fn republish_locked(&self, cache: &mut DfaCache, touched: usize) {
        let mut published = self.published.write().unwrap();
        let mut states = published.states.clone();
        let appended = cache.states.len() - states.len();
        for (i, state) in cache.states.iter().enumerate().skip(states.len()) {
            states.push(Arc::new(SnapshotState::build(i, &state.transitions, state.accept)));
        }
        states[touched] = Arc::new(SnapshotState::build(
            touched,
            &cache.states[touched].transitions,
            cache.states[touched].accept,
        ));
        cache.stats.dense_rows_built += appended + 1;
        *published = Arc::new(DfaSnapshot { states });
    }

    // ------------------------------------------------------------------
    // Incremental definition changes (DFA carry-over)
    // ------------------------------------------------------------------
    //
    // The ISG of the paper discards the whole DFA cache on a definition
    // change and re-materialises by need. Here the change is *selective*,
    // mirroring the parser's §6 invalidation: fragments of different
    // tokens never share NFA states (only the global start has epsilon
    // edges into fragment entries), so a DFA state whose NFA set is
    // disjoint from the changed fragment — and which is not the start
    // state, whose closure every change affects — behaves identically on
    // every character and keeps its memoised transitions. Its targets are
    // equally disjoint, so carried-over transitions can never lead into an
    // invalidated slot. This implementation memoises transitions per
    // character rather than per character class, so the class partition is
    // implicit; the rebuild fallback below plays the role of "the
    // partition itself changed" — when removals have turned too much of
    // the NFA into garbage, the owner recompiles from scratch.

    /// Adds a token definition to the live DFA. Only the start state is
    /// re-derived (its closure gains the new fragment's entry); every
    /// other materialised state is carried over. Returns the new token id.
    pub fn add_token(&mut self, regex: &Regex) -> TokenId {
        let id = self.nfa.add_token(regex);
        let cache = self.cache.get_mut().unwrap();
        let carried = cache.states.len() - 1 - cache.garbage;
        cache.stats.carried_over += carried;
        cache.stats.invalidated += 1;
        Self::reset_start(&self.nfa, cache);
        self.republish_after_edit(&[0]);
        id
    }

    /// Removes a token definition from the live DFA. Invalidates exactly
    /// the materialised states whose NFA sets intersect the removed
    /// fragment (plus the start state); everything else is carried over.
    /// Returns `true` if the token was active.
    pub fn remove_token(&mut self, id: TokenId) -> bool {
        // Unknown or already-removed ids answer `false`, they don't panic:
        // a stale id is an expected input after a compacting rebuild.
        if !self.nfa.is_token_active(id) {
            return false;
        }
        let range = self.nfa.fragment_range(id);
        if !self.nfa.remove_token(id) {
            return false;
        }
        let cache = self.cache.get_mut().unwrap();
        let mut touched: Vec<usize> = vec![0];
        for (i, state) in cache.states.iter().enumerate().skip(1) {
            if state.dead {
                continue;
            }
            // `nfa_states` is sorted: binary-search the fragment bounds.
            let from = state.nfa_states.partition_point(|&s| s < range.start);
            if state.nfa_states.get(from).is_some_and(|&s| s < range.end) {
                touched.push(i);
            }
        }
        let live_before = cache.states.len() - cache.garbage;
        for &i in touched.iter().skip(1) {
            let state = &mut cache.states[i];
            if cache.index.get(&state.nfa_states) == Some(&i) {
                cache.index.remove(&state.nfa_states);
            }
            state.nfa_states = Vec::new();
            state.transitions = HashMap::new();
            state.accept = None;
            state.dead = true;
            cache.garbage += 1;
        }
        cache.stats.carried_over += live_before - touched.len();
        cache.stats.invalidated += touched.len();
        Self::reset_start(&self.nfa, cache);
        self.republish_after_edit(&touched);
        true
    }

    /// Re-derives the start DFA state (id 0) from the current NFA: its
    /// epsilon closure is the one set every definition change affects.
    fn reset_start(nfa: &Nfa, cache: &mut DfaCache) {
        let old = std::mem::take(&mut cache.states[0].nfa_states);
        if cache.index.get(&old) == Some(&0) {
            cache.index.remove(&old);
        }
        let closure = nfa.epsilon_closure(&[nfa.start()]);
        cache.states[0] = LazyDfaState {
            nfa_states: closure.clone(),
            transitions: HashMap::new(),
            accept: nfa.accepting_token(&closure),
            dead: false,
        };
        // The closure contains the global start state, which no other DFA
        // state's set can, so this cannot collide with a live entry.
        cache.index.insert(closure, 0);
    }

    /// Rebuilds the published snapshot after a definition change, reusing
    /// the per-state `Arc`s of every carried-over state and re-deriving
    /// only the touched ones.
    fn republish_after_edit(&mut self, touched: &[usize]) {
        let cache = self.cache.get_mut().unwrap();
        let published = self.published.get_mut().unwrap();
        let mut states = Vec::with_capacity(cache.states.len());
        for (i, state) in cache.states.iter().enumerate() {
            match published.states.get(i) {
                // Carried-over states keep their dense rows (and the rest
                // of their published view) — only touched ones re-derive.
                Some(prev) if !touched.contains(&i) => states.push(prev.clone()),
                _ => {
                    cache.stats.dense_rows_built += 1;
                    states.push(Arc::new(SnapshotState::build(i, &state.transitions, state.accept)));
                }
            }
        }
        *published = Arc::new(DfaSnapshot { states });
    }

    /// Fraction of materialised DFA states (and underlying NFA states)
    /// that definition removals have turned into garbage. Owners rebuild
    /// from the active definitions when this gets large.
    pub fn garbage_fraction(&self) -> f64 {
        let cache = self.cache.read().unwrap();
        let dfa_fraction = if cache.states.is_empty() {
            0.0
        } else {
            cache.garbage as f64 / cache.states.len() as f64
        };
        dfa_fraction.max(self.nfa.dead_fraction())
    }

    /// The underlying NFA.
    pub fn nfa(&self) -> &Nfa {
        &self.nfa
    }

    /// Work counters.
    pub fn stats(&self) -> DfaStats {
        let mut stats = self.cache.read().unwrap().stats;
        stats.cache_hits += self.cache_hits.load(Ordering::Relaxed);
        stats.dense_bytes += self.dense_bytes.load(Ordering::Relaxed);
        stats.skip_loop_bytes += self.skip_loop_bytes.load(Ordering::Relaxed);
        stats
    }

    /// Measurement knob: disable (or re-enable) the dense byte-row fast
    /// path. With it off, every character goes through the lazy `char`-map
    /// path, so benches can measure the dense speedup on one host.
    pub fn set_dense_scanning(&self, enabled: bool) {
        self.dense_disabled.store(!enabled, Ordering::Relaxed);
    }

    /// Number of DFA states materialised so far.
    pub fn num_states(&self) -> usize {
        self.cache.read().unwrap().states.len()
    }

    fn intern(nfa: &Nfa, cache: &mut DfaCache, nfa_states: Vec<usize>) -> usize {
        if let Some(&id) = cache.index.get(&nfa_states) {
            return id;
        }
        let accept = nfa.accepting_token(&nfa_states);
        let id = cache.states.len();
        cache.index.insert(nfa_states.clone(), id);
        cache.states.push(LazyDfaState {
            nfa_states,
            transitions: HashMap::new(),
            accept,
            dead: false,
        });
        cache.stats.states += 1;
        id
    }

    /// The miss path: run one subset-construction step under the write
    /// lock, memoise it, republish the snapshot, and return the target
    /// state together with its accept token.
    fn materialise_step(&self, state: usize, c: char) -> Option<(usize, Option<TokenId>)> {
        let mut cache = self.cache.write().unwrap();
        // Double-check: another thread may have filled the entry (and
        // republished) while we were waiting for the write lock.
        if let Some(&cached) = cache.states[state].transitions.get(&c) {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            return cached.map(|next| (next, cache.states[next].accept));
        }
        cache.stats.cache_misses += 1;
        let next_set = self.nfa.step(&cache.states[state].nfa_states, c);
        let result = if next_set.is_empty() {
            None
        } else {
            Some(Self::intern(&self.nfa, &mut cache, next_set))
        };
        cache.states[state].transitions.insert(c, result);
        cache.stats.transitions += 1;
        self.republish_locked(&mut cache, state);
        result.map(|next| (next, cache.states[next].accept))
    }

    /// The transition from DFA state `state` on character `c`, together
    /// with the token accepted in the *target* state, served from the
    /// caller's pinned snapshot when memoised (no locks), computed and
    /// memoised through the writer otherwise (the pin is refreshed).
    fn step_with_accept_pinned(
        &self,
        pin: &mut Arc<DfaSnapshot>,
        hits: &mut usize,
        state: usize,
        c: char,
    ) -> Option<(usize, Option<TokenId>)> {
        if let Some(entry) = pin.states.get(state) {
            if let Some(&cached) = entry.transitions.get(&c) {
                *hits += 1;
                return cached.map(|next| (next, pin.states[next].accept));
            }
        }
        let stepped = self.materialise_step(state, c);
        *pin = self.snapshot();
        stepped
    }

    /// The transition from DFA state `state` on character `c`, computing
    /// and memoising it if necessary. `None` is the dead state. Pins a
    /// fresh snapshot per call; scanners stepping many characters should
    /// hold their own pin and use [`LazyDfa::longest_match_pinned`].
    pub fn step(&self, state: usize, c: char) -> Option<usize> {
        let mut pin = self.snapshot();
        let mut hits = 0usize;
        let result = self
            .step_with_accept_pinned(&mut pin, &mut hits, state, c)
            .map(|(next, _)| next);
        if hits > 0 {
            self.cache_hits.fetch_add(hits, Ordering::Relaxed);
        }
        result
    }

    /// The token accepted in `state`, if any.
    pub fn accept(&self, state: usize) -> Option<TokenId> {
        self.cache.read().unwrap().states[state].accept
    }

    /// The longest prefix of `input` starting at `start` that matches a
    /// token, with the token id — served from the caller's pinned
    /// snapshot. Characters with scalar value `< 256` step through the
    /// dense byte rows (one array load), with self-transition runs
    /// (whitespace, identifier tails, literal bodies) swallowed by a
    /// mask-test skip loop that re-derives `best` once per run instead of
    /// once per character. Characters `≥ U+0100` and not-yet-dense entries
    /// fall back to the lazy `char`-map path. Every step against
    /// already-materialised entries is a plain read of immutable data: no
    /// locks, no atomics (counters are tallied locally and flushed once on
    /// return). A miss takes the writer, republishes and refreshes `pin`
    /// in place, so the caller's next token starts from the enriched
    /// snapshot.
    pub fn longest_match_pinned(
        &self,
        pin: &mut Arc<DfaSnapshot>,
        input: &[char],
        start: usize,
    ) -> Option<(usize, TokenId)> {
        self.longest_match_pinned_examined(pin, input, start).0
    }

    /// [`LazyDfa::longest_match_pinned`] plus the *examined extent*: the
    /// second component is one past the last character index the DFA read
    /// while deciding this match — `input.len() + 1` when the match was
    /// terminated by running out of input (an end-sensitive match: text
    /// appended at the end can change it). Incremental re-lexing uses the
    /// extent to decide which earlier matches an edit can influence.
    pub fn longest_match_pinned_examined(
        &self,
        pin: &mut Arc<DfaSnapshot>,
        input: &[char],
        start: usize,
    ) -> (Option<(usize, TokenId)>, usize) {
        let dense_enabled = !self.dense_disabled.load(Ordering::Relaxed);
        let mut state = 0usize;
        let mut hits = 0usize;
        let mut dense_bytes = 0usize;
        let mut skip_bytes = 0usize;
        let mut best = pin
            .states
            .first()
            .and_then(|s| s.accept)
            .map(|t| (0usize, t));
        let mut len = 0usize;
        while let Some(&c) = input.get(start + len) {
            let b = c as u32;
            let mut code = DENSE_UNKNOWN;
            if dense_enabled && b < 256 {
                if let Some(entry) = pin.states.get(state) {
                    if entry.self_loops(b as usize) {
                        // Skip loop: the state does not change across the
                        // run, so `best` needs one update at the end, not
                        // one per character.
                        let run_start = len;
                        len += 1;
                        while input
                            .get(start + len)
                            .is_some_and(|&c2| (c2 as u32) < 256 && entry.self_loops(c2 as usize))
                        {
                            len += 1;
                        }
                        let run = len - run_start;
                        skip_bytes += run;
                        hits += run;
                        if let Some(t) = entry.accept {
                            best = Some((len, t));
                        }
                        continue;
                    }
                    code = entry.dense[b as usize];
                }
            }
            if code >= 2 {
                state = (code - 2) as usize;
                len += 1;
                dense_bytes += 1;
                hits += 1;
                if let Some(t) = pin.states[state].accept {
                    best = Some((len, t));
                }
                continue;
            }
            if code == DENSE_DEAD {
                break;
            }
            // DENSE_UNKNOWN: non-Latin-1, dense path disabled, or a
            // genuinely unmaterialised byte — the lazy fallback resolves
            // all three (and only the last one is a cache miss).
            match self.step_with_accept_pinned(pin, &mut hits, state, c) {
                Some((next, accept)) => {
                    state = next;
                    len += 1;
                    if let Some(t) = accept {
                        best = Some((len, t));
                    }
                }
                None => break,
            }
        }
        if hits > 0 {
            self.cache_hits.fetch_add(hits, Ordering::Relaxed);
        }
        if dense_bytes > 0 {
            self.dense_bytes.fetch_add(dense_bytes, Ordering::Relaxed);
        }
        if skip_bytes > 0 {
            self.skip_loop_bytes.fetch_add(skip_bytes, Ordering::Relaxed);
        }
        // At loop exit `len` indexes the character that killed the scan
        // (dead transition) or equals the remaining input length (ran out
        // of text), so `start + len + 1` uniformly covers everything read —
        // including the virtual end-of-input position.
        (best, start + len + 1)
    }

    /// The longest prefix of `input` starting at `start` that matches a
    /// token, with the token id. Pins a fresh snapshot per call; see
    /// [`LazyDfa::longest_match_pinned`] for the hot-loop form.
    pub fn longest_match(&self, input: &[char], start: usize) -> Option<(usize, TokenId)> {
        let mut pin = self.snapshot();
        self.longest_match_pinned(&mut pin, input, start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regex::Regex;

    fn chars(s: &str) -> Vec<char> {
        s.chars().collect()
    }

    fn sample_dfa() -> LazyDfa {
        let ident = Regex::parse("[a-zA-Z] [a-zA-Z0-9_]*").unwrap();
        let number = Regex::parse("[0-9]+").unwrap();
        let kw_if = Regex::literal("if");
        LazyDfa::new(Nfa::build(&[kw_if, ident, number]))
    }

    #[test]
    fn starts_with_a_single_state() {
        let dfa = sample_dfa();
        assert_eq!(dfa.num_states(), 1);
        assert_eq!(dfa.stats().transitions, 0);
    }

    #[test]
    fn matches_agree_with_the_nfa_reference() {
        let dfa = sample_dfa();
        for text in ["if", "iffy", "x1_y", "42", "007 agent", "+nope", ""] {
            let input = chars(text);
            assert_eq!(
                dfa.longest_match(&input, 0),
                dfa.nfa().clone().longest_match(&input),
                "input `{text}`"
            );
        }
    }

    #[test]
    fn states_and_transitions_materialise_on_demand() {
        let dfa = sample_dfa();
        dfa.longest_match(&chars("abc"), 0);
        let after_ident = dfa.num_states();
        assert!(after_ident >= 2);
        let transitions_after_ident = dfa.stats().transitions;
        // Scanning digits needs new states/transitions...
        dfa.longest_match(&chars("123"), 0);
        assert!(dfa.num_states() > 0);
        assert!(dfa.stats().transitions > transitions_after_ident);
        // ...but re-scanning the same kind of text hits the cache.
        let misses = dfa.stats().cache_misses;
        dfa.longest_match(&chars("abc"), 0);
        assert_eq!(dfa.stats().cache_misses, misses);
        assert!(dfa.stats().cache_hits > 0);
    }

    #[test]
    fn longest_match_respects_start_offset() {
        let dfa = sample_dfa();
        let input = chars("xy 42");
        assert_eq!(dfa.longest_match(&input, 3), Some((2, 2)));
        assert_eq!(dfa.longest_match(&input, 2), None); // space matches nothing
    }

    #[test]
    fn keyword_beats_identifier_on_equal_length() {
        let dfa = sample_dfa();
        assert_eq!(dfa.longest_match(&chars("if("), 0), Some((2, 0)));
        assert_eq!(dfa.longest_match(&chars("ifx"), 0), Some((3, 1)));
    }

    #[test]
    fn pinned_snapshots_serve_stale_reads_and_refresh_on_miss() {
        let dfa = sample_dfa();
        let mut pin = dfa.snapshot();
        assert_eq!(pin.num_states(), 1);
        // Someone else expands the DFA; the pin is now stale but still
        // answers (its entries can only be missing, never wrong).
        dfa.longest_match(&chars("4281"), 0);
        assert!(dfa.num_states() > pin.num_states());
        // A miss through the pin materialises, republishes and refreshes.
        assert_eq!(dfa.longest_match_pinned(&mut pin, &chars("abc"), 0), Some((3, 1)));
        assert_eq!(pin.num_states(), dfa.num_states());
        // Steady state: the refreshed pin serves without further misses.
        let misses = dfa.stats().cache_misses;
        assert_eq!(dfa.longest_match_pinned(&mut pin, &chars("abc"), 0), Some((3, 1)));
        assert_eq!(dfa.stats().cache_misses, misses);
    }

    #[test]
    fn add_token_carries_over_all_but_the_start_state() {
        let mut dfa = sample_dfa();
        dfa.longest_match(&chars("abc"), 0);
        dfa.longest_match(&chars("4281"), 0);
        let states_before = dfa.num_states();
        assert!(states_before > 2);
        let id = dfa.add_token(&Regex::literal("%"));
        // Everything except the start state survived the change.
        assert_eq!(dfa.stats().carried_over, states_before - 1);
        assert_eq!(dfa.stats().invalidated, 1);
        // The new token scans, and the automaton still agrees with direct
        // NFA simulation everywhere.
        assert_eq!(dfa.longest_match(&chars("%"), 0), Some((1, id)));
        for text in ["if", "iffy", "x1_y", "42", "a%b", "%%"] {
            let input = chars(text);
            assert_eq!(
                dfa.longest_match(&input, 0),
                dfa.nfa().clone().longest_match(&input),
                "input `{text}`"
            );
        }
        // Re-scanning previously materialised text re-derives only the
        // steps out of the start state, not the whole path.
        let misses_before = dfa.stats().cache_misses;
        dfa.longest_match(&chars("abc"), 0);
        dfa.longest_match(&chars("abc"), 0);
        let new_misses = dfa.stats().cache_misses - misses_before;
        assert!(new_misses <= 1, "only the start step was re-derived, got {new_misses}");
    }

    #[test]
    fn remove_token_of_unknown_or_removed_ids_is_graceful() {
        let mut dfa = sample_dfa();
        assert!(!dfa.remove_token(999), "out-of-range id answers false");
        assert!(dfa.remove_token(2));
        assert!(!dfa.remove_token(2), "second removal answers false");
    }

    #[test]
    fn remove_token_invalidates_only_intersecting_states() {
        let mut dfa = sample_dfa();
        dfa.longest_match(&chars("abc"), 0); // identifier path
        dfa.longest_match(&chars("4281"), 0); // number path
        let states_before = dfa.num_states();
        // Remove the number token (id 2).
        assert!(dfa.remove_token(2));
        assert!(!dfa.remove_token(2), "already removed");
        assert!(dfa.stats().carried_over > 0);
        assert!(dfa.stats().carried_over < states_before);
        // Numbers no longer scan; identifiers and keywords still agree
        // with the (updated) NFA reference.
        assert_eq!(dfa.longest_match(&chars("42"), 0), None);
        for text in ["if", "iffy", "x1_y", "a42"] {
            let input = chars(text);
            assert_eq!(
                dfa.longest_match(&input, 0),
                dfa.nfa().clone().longest_match(&input),
                "input `{text}`"
            );
        }
        assert!(dfa.garbage_fraction() > 0.0);
    }

    #[test]
    fn rescans_run_on_dense_rows_and_the_skip_loop() {
        let dfa = sample_dfa();
        let input = chars("abcdefgh 42");
        dfa.longest_match(&input, 0); // materialise the identifier path
        dfa.longest_match(&input, 9); // materialise the number path
        let before = dfa.stats();
        assert!(before.dense_rows_built > 0);
        assert_eq!(dfa.longest_match(&input, 0), Some((8, 1)));
        let after = dfa.stats();
        assert_eq!(after.cache_misses, before.cache_misses, "no new subset steps");
        assert!(
            after.skip_loop_bytes > before.skip_loop_bytes,
            "the identifier tail is a self-transition run"
        );
        assert!(after.dense_bytes + after.skip_loop_bytes > before.dense_bytes + before.skip_loop_bytes);
    }

    #[test]
    fn disabling_dense_scanning_matches_the_dense_results() {
        let dfa = sample_dfa();
        for text in ["if", "iffy", "x1_y", "42", "007 agent"] {
            let input = chars(text);
            let dense = dfa.longest_match(&input, 0);
            dfa.set_dense_scanning(false);
            let lazy_bytes = dfa.stats().dense_bytes;
            assert_eq!(dfa.longest_match(&input, 0), dense, "input `{text}`");
            assert_eq!(dfa.stats().dense_bytes, lazy_bytes, "lazy path counts no dense bytes");
            dfa.set_dense_scanning(true);
        }
    }

    #[test]
    fn non_latin1_characters_use_the_lazy_fallback() {
        let mut dfa = sample_dfa();
        let id = dfa.add_token(&Regex::literal("λx"));
        let input = chars("λx");
        assert_eq!(dfa.longest_match(&input, 0), Some((2, id)));
        let before = dfa.stats();
        assert_eq!(dfa.longest_match(&input, 0), Some((2, id)));
        let after = dfa.stats();
        assert_eq!(after.cache_misses, before.cache_misses, "memoised in the char map");
        assert!(after.cache_hits > before.cache_hits);
        assert!(after.dense_bytes <= before.dense_bytes + 1, "only `x` can step densely");
    }

    #[test]
    fn concurrent_scans_share_one_lazily_built_dfa() {
        let dfa = sample_dfa();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for text in ["if", "iffy", "x1_y", "42", "agent 007"] {
                        let input = chars(text);
                        assert_eq!(
                            dfa.longest_match(&input, 0),
                            dfa.nfa().clone().longest_match(&input),
                            "input `{text}`"
                        );
                    }
                });
            }
        });
        // All threads materialised one shared cache.
        assert!(dfa.stats().cache_hits > 0);
        let clone = dfa.clone();
        assert_eq!(clone.num_states(), dfa.num_states());
    }
}
