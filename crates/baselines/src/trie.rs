//! A Cigale-style trie parser with OBJ-style backtracking — the remaining
//! two rows of the paper's comparison (Fig. 2.1).
//!
//! Cigale \[Voi86\] "builds a trie for the grammar in which production
//! rules with the same prefix share a path. During parsing this trie is
//! recursively traversed. A trie can easily be extended with new syntax
//! rules". OBJ \[FGJM85\] uses recursive descent with backtracking, which
//! "can be expensive for complex expressions".
//!
//! This module implements both ideas in one parser: the productions of each
//! non-terminal are stored in a prefix-sharing trie that can be extended
//! rule by rule (`add_rule`), and parsing is a recursive traversal of that
//! trie with backtracking across alternatives. Left recursion is detected
//! (a `(non-terminal, position)` pair may not recur on the active call
//! stack) and simply fails that branch, reflecting the "non-left-recursive"
//! restriction of this family of algorithms. The work counter exposes the
//! exponential backtracking cost that makes the approach "less suitable for
//! large input sentences".

use std::collections::{BTreeMap, HashSet};

use ipg_grammar::{Grammar, RuleId, SymbolId};

/// One node of a production trie: children keyed by the next right-hand
/// side symbol, plus the rules that *end* at this node.
#[derive(Clone, Debug, Default)]
struct TrieNode {
    children: BTreeMap<SymbolId, usize>,
    /// Rules whose complete right-hand side spells the path to this node.
    accepting: Vec<RuleId>,
}

/// A prefix-sharing trie of the productions of all non-terminals, built
/// incrementally.
#[derive(Clone, Debug, Default)]
pub struct ProductionTrie {
    nodes: Vec<TrieNode>,
    /// Root node per non-terminal.
    roots: BTreeMap<SymbolId, usize>,
    rules_added: usize,
}

impl ProductionTrie {
    /// Creates an empty trie.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds the trie for every active rule of `grammar`.
    pub fn from_grammar(grammar: &Grammar) -> Self {
        let mut trie = Self::new();
        for rule in grammar.rules() {
            trie.add_rule(grammar, rule.id);
        }
        trie
    }

    /// Adds one rule to the trie — the "easily be extended with new syntax
    /// rules" operation. Adding the same rule twice is a no-op.
    pub fn add_rule(&mut self, grammar: &Grammar, rule_id: RuleId) {
        let rule = grammar.rule(rule_id);
        let mut node = self.root_for(rule.lhs);
        for &symbol in &rule.rhs {
            node = self.child(node, symbol);
        }
        if !self.nodes[node].accepting.contains(&rule_id) {
            self.nodes[node].accepting.push(rule_id);
            self.rules_added += 1;
        }
    }

    /// Number of rules stored.
    pub fn num_rules(&self) -> usize {
        self.rules_added
    }

    /// Number of trie nodes; prefix sharing makes this smaller than the sum
    /// of all right-hand-side lengths.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    fn root_for(&mut self, nt: SymbolId) -> usize {
        if let Some(&n) = self.roots.get(&nt) {
            return n;
        }
        let n = self.push_node();
        self.roots.insert(nt, n);
        n
    }

    fn child(&mut self, node: usize, symbol: SymbolId) -> usize {
        if let Some(&n) = self.nodes[node].children.get(&symbol) {
            return n;
        }
        let n = self.push_node();
        self.nodes[node].children.insert(symbol, n);
        n
    }

    fn push_node(&mut self) -> usize {
        self.nodes.push(TrieNode::default());
        self.nodes.len() - 1
    }
}

/// Statistics of one trie parse; `steps` is the backtracking cost.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TrieStats {
    /// Trie-node visits (the unit of backtracking work).
    pub steps: usize,
    /// Successful complete parses found for the start symbol (ambiguity
    /// count as seen by the backtracking parser, bounded by the caller).
    pub parses: usize,
}

/// The backtracking trie parser.
#[derive(Debug)]
pub struct TrieParser<'g> {
    grammar: &'g Grammar,
    trie: ProductionTrie,
    /// Safety bound on trie-node visits per sentence (backtracking can be
    /// exponential).
    step_limit: usize,
}

impl<'g> TrieParser<'g> {
    /// Builds the trie for `grammar` and wraps it in a parser.
    pub fn new(grammar: &'g Grammar) -> Self {
        TrieParser {
            grammar,
            trie: ProductionTrie::from_grammar(grammar),
            step_limit: 1_000_000,
        }
    }

    /// Overrides the backtracking step limit.
    pub fn with_step_limit(mut self, limit: usize) -> Self {
        self.step_limit = limit;
        self
    }

    /// The underlying trie.
    pub fn trie(&self) -> &ProductionTrie {
        &self.trie
    }

    /// Adds a rule that was just added to the grammar; the trie is extended
    /// in place (no regeneration), mirroring Cigale's modularity argument.
    pub fn add_rule(&mut self, rule: RuleId) {
        self.trie.add_rule(self.grammar, rule);
    }

    /// Recognises `tokens`. Returns `false` both for ungrammatical input
    /// and when the step limit is exceeded (the caller can distinguish the
    /// two through [`TrieParser::recognize_with_stats`]).
    pub fn recognize(&self, tokens: &[SymbolId]) -> bool {
        self.recognize_with_stats(tokens).0
    }

    /// Recognises `tokens` and reports the backtracking cost.
    pub fn recognize_with_stats(&self, tokens: &[SymbolId]) -> (bool, TrieStats) {
        let mut stats = TrieStats::default();
        let mut in_progress = HashSet::new();
        let ends = self.parse_nonterminal(
            self.grammar.start_symbol(),
            tokens,
            0,
            &mut stats,
            &mut in_progress,
        );
        let accepted = ends.contains(&tokens.len());
        if accepted {
            stats.parses = stats.parses.max(1);
        }
        (accepted, stats)
    }

    /// Returns every input position at which a phrase of `nt` starting at
    /// `start` can end.
    fn parse_nonterminal(
        &self,
        nt: SymbolId,
        tokens: &[SymbolId],
        start: usize,
        stats: &mut TrieStats,
        in_progress: &mut HashSet<(SymbolId, usize)>,
    ) -> Vec<usize> {
        let Some(&root) = self.trie.roots.get(&nt) else {
            return Vec::new();
        };
        if !in_progress.insert((nt, start)) {
            // Left recursion: this family of parsers cannot handle it; the
            // branch simply fails.
            return Vec::new();
        }
        let mut ends = Vec::new();
        self.walk(root, tokens, start, stats, in_progress, &mut ends);
        in_progress.remove(&(nt, start));
        ends.sort_unstable();
        ends.dedup();
        ends
    }

    fn walk(
        &self,
        node: usize,
        tokens: &[SymbolId],
        pos: usize,
        stats: &mut TrieStats,
        in_progress: &mut HashSet<(SymbolId, usize)>,
        ends: &mut Vec<usize>,
    ) {
        stats.steps += 1;
        if stats.steps > self.step_limit {
            return;
        }
        let trie_node = &self.trie.nodes[node];
        if !trie_node.accepting.is_empty() {
            ends.push(pos);
        }
        for (&symbol, &child) in &trie_node.children {
            if self.grammar.is_terminal(symbol) {
                if tokens.get(pos).copied() == Some(symbol) {
                    self.walk(child, tokens, pos + 1, stats, in_progress, ends);
                }
            } else {
                for end in self.parse_nonterminal(symbol, tokens, pos, stats, in_progress) {
                    self.walk(child, tokens, end, stats, in_progress, ends);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipg_grammar::fixtures;
    use ipg_lr::tokenize_names;

    #[test]
    fn trie_shares_prefixes() {
        let g = fixtures::booleans();
        let trie = ProductionTrie::from_grammar(&g);
        assert_eq!(trie.num_rules(), g.num_active_rules());
        // `B ::= B or B` and `B ::= B and B` share their first node.
        let rhs_symbols: usize = g.rules().map(|r| r.rhs.len()).sum();
        assert!(trie.num_nodes() <= rhs_symbols + g.symbols().nonterminals().count() + 1);
    }

    #[test]
    fn recognises_right_recursive_expressions() {
        // An LL-style expression grammar without left recursion.
        let g = ipg_grammar::parse_bnf(
            r#"
            E ::= T "+" E | T
            T ::= F "*" T | F
            F ::= "(" E ")" | "id"
            START ::= E
            "#,
        )
        .unwrap();
        let parser = TrieParser::new(&g);
        for (s, expected) in [
            ("id", true),
            ("id + id * id", true),
            ("( id + id ) * id", true),
            ("id +", false),
            ("+ id", false),
            ("( id", false),
        ] {
            let tokens = tokenize_names(&g, s).unwrap();
            assert_eq!(parser.recognize(&tokens), expected, "sentence `{s}`");
        }
    }

    #[test]
    fn left_recursion_fails_gracefully() {
        let g = fixtures::left_recursive_list();
        let parser = TrieParser::new(&g);
        let tokens = tokenize_names(&g, "x , x").unwrap();
        // The trie/backtracking family cannot handle left recursion; it
        // must terminate and (conservatively) reject.
        let (accepted, stats) = parser.recognize_with_stats(&tokens);
        assert!(!accepted);
        assert!(stats.steps < 1000);
        // The single-`x` sentence is still recognised via the non-recursive
        // alternative.
        assert!(parser.recognize(&tokenize_names(&g, "x").unwrap()));
    }

    #[test]
    fn incremental_rule_addition_extends_the_trie() {
        // A non-left-recursive boolean grammar: B ::= true | false | not B.
        let g = ipg_grammar::parse_bnf(
            r#"
            B ::= "true" | "false" | "not" B
            START ::= B
            "#,
        )
        .unwrap();
        // Build the trie one rule at a time, as an editor adding rules would.
        let mut trie = ProductionTrie::new();
        for (i, rule) in g.rules().enumerate() {
            trie.add_rule(&g, rule.id);
            assert_eq!(trie.num_rules(), i + 1);
        }
        // Re-adding an existing rule is a no-op.
        let first = g.rules().next().unwrap().id;
        trie.add_rule(&g, first);
        assert_eq!(trie.num_rules(), g.num_active_rules());

        let parser = TrieParser::new(&g);
        assert!(parser.recognize(&tokenize_names(&g, "not not false").unwrap()));
        assert!(!parser.recognize(&tokenize_names(&g, "not").unwrap()));
        assert_eq!(parser.trie().num_rules(), g.num_active_rules());
    }

    #[test]
    fn backtracking_cost_grows_for_ambiguous_prefixes() {
        let g = ipg_grammar::parse_bnf(
            r#"
            E ::= T "+" E | T
            T ::= "id"
            START ::= E
            "#,
        )
        .unwrap();
        let parser = TrieParser::new(&g);
        let short = parser
            .recognize_with_stats(&tokenize_names(&g, "id + id").unwrap())
            .1
            .steps;
        let long = parser
            .recognize_with_stats(&tokenize_names(&g, "id + id + id + id + id").unwrap())
            .1
            .steps;
        assert!(long > short);
    }

    #[test]
    fn step_limit_prevents_runaway_backtracking() {
        let g = ipg_grammar::parse_bnf(
            r#"
            E ::= T "+" E | T
            T ::= F "*" T | F
            F ::= "(" E ")" | "id"
            START ::= E
            "#,
        )
        .unwrap();
        let parser = TrieParser::new(&g).with_step_limit(10);
        let tokens = tokenize_names(&g, "( id + id ) * id + id").unwrap();
        let (accepted, stats) = parser.recognize_with_stats(&tokens);
        assert!(!accepted);
        assert!(stats.steps >= 10);
    }
}
