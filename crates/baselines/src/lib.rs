//! # ipg-baselines
//!
//! The remaining parsing algorithms from the paper's comparison table
//! (Fig. 2.1) that are not covered by `ipg-lr` (LR/LALR), `ipg-glr`
//! (Tomita) or `ipg-earley` (Earley):
//!
//! * [`ll`] — LL(1) table construction and predictive parsing, standing in
//!   for the "recursive descent, LL(k)" row: fast, but limited to
//!   non-left-recursive, non-ambiguous grammars, and the table must be
//!   regenerated after every grammar change;
//! * [`trie`] — a Cigale-style production trie with OBJ-style backtracking:
//!   trivially extensible with new rules (flexible, modular), but with
//!   backtracking cost that grows quickly on larger inputs and no support
//!   for left recursion.
//!
//! The `fig2_comparison` binary in `ipg-bench` runs all seven algorithms
//! over a matrix of grammars and inputs to regenerate the paper's
//! qualitative table from measurements.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ll;
pub mod trie;

pub use ll::{LlConflict, LlParseError, LlParser, LlTable};
pub use trie::{ProductionTrie, TrieParser, TrieStats};
