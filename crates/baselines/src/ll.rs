//! LL(1) table construction and predictive parsing — the "recursive
//! descent, LL(k)" row of the paper's comparison (Fig. 2.1).
//!
//! The class of grammars is limited to non-left-recursive, non-ambiguous
//! grammars; the table construction reports conflicts for anything outside
//! it, which is exactly what the comparison in the `fig2_comparison`
//! report binary exercises.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

use ipg_grammar::{Grammar, GrammarAnalysis, RuleId, SymbolId};

/// A conflict in the LL(1) table: two rules compete for the same
/// (non-terminal, lookahead) cell.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LlConflict {
    /// The non-terminal being expanded.
    pub nonterminal: SymbolId,
    /// The lookahead terminal.
    pub lookahead: SymbolId,
    /// The competing rules.
    pub rules: Vec<RuleId>,
}

/// An LL(1) parse table: `(non-terminal, lookahead terminal) -> rule`.
#[derive(Clone, Debug)]
pub struct LlTable {
    table: HashMap<(SymbolId, SymbolId), Vec<RuleId>>,
    start_rule_lhs: SymbolId,
}

impl LlTable {
    /// Builds the LL(1) table for `grammar` from FIRST/FOLLOW sets.
    pub fn build(grammar: &Grammar) -> Self {
        let analysis = GrammarAnalysis::compute(grammar);
        let mut table: HashMap<(SymbolId, SymbolId), Vec<RuleId>> = HashMap::new();
        for rule in grammar.rules() {
            let first = analysis.first_of_sequence(&rule.rhs);
            for &terminal in &first {
                push_unique(&mut table, (rule.lhs, terminal), rule.id);
            }
            if analysis.sequence_nullable(&rule.rhs) {
                for terminal in analysis.follow(rule.lhs) {
                    push_unique(&mut table, (rule.lhs, terminal), rule.id);
                }
            }
        }
        LlTable {
            table,
            start_rule_lhs: grammar.start_symbol(),
        }
    }

    /// The rule predicted for `(nonterminal, lookahead)`, if the cell holds
    /// exactly one rule.
    pub fn predict(&self, nonterminal: SymbolId, lookahead: SymbolId) -> Option<RuleId> {
        match self.table.get(&(nonterminal, lookahead)) {
            Some(rules) if rules.len() == 1 => Some(rules[0]),
            _ => None,
        }
    }

    /// All conflicts of the table; empty iff the grammar is LL(1).
    pub fn conflicts(&self) -> Vec<LlConflict> {
        let mut out: Vec<LlConflict> = self
            .table
            .iter()
            .filter(|(_, rules)| rules.len() > 1)
            .map(|(&(nonterminal, lookahead), rules)| LlConflict {
                nonterminal,
                lookahead,
                rules: rules.clone(),
            })
            .collect();
        out.sort_by_key(|c| (c.nonterminal, c.lookahead));
        out
    }

    /// `true` iff the grammar is LL(1).
    pub fn is_ll1(&self) -> bool {
        self.table.values().all(|rules| rules.len() <= 1)
    }

    /// Number of filled cells.
    pub fn num_entries(&self) -> usize {
        self.table.values().map(Vec::len).sum()
    }

    /// Renders the table, one line per filled cell.
    pub fn render(&self, grammar: &Grammar) -> String {
        let ordered: BTreeMap<_, _> = self.table.iter().collect();
        let mut out = String::new();
        for (&(nt, t), rules) in ordered {
            let rules = rules
                .iter()
                .map(|r| grammar.rule(*r).display(grammar.symbols()).to_string())
                .collect::<Vec<_>>()
                .join(" | ");
            out.push_str(&format!(
                "M[{}, {}] = {}\n",
                grammar.name(nt),
                grammar.name(t),
                rules
            ));
        }
        out
    }

    fn start_symbol(&self) -> SymbolId {
        self.start_rule_lhs
    }
}

fn push_unique(
    table: &mut HashMap<(SymbolId, SymbolId), Vec<RuleId>>,
    key: (SymbolId, SymbolId),
    rule: RuleId,
) {
    let cell = table.entry(key).or_default();
    if !cell.contains(&rule) {
        cell.push(rule);
    }
}

/// Errors reported by the predictive parser.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LlParseError {
    /// The table has no (unique) prediction for this cell.
    NoPrediction {
        /// Non-terminal on top of the prediction stack.
        nonterminal: SymbolId,
        /// Current lookahead terminal.
        lookahead: SymbolId,
        /// Token position.
        position: usize,
    },
    /// A terminal on the prediction stack did not match the input.
    Mismatch {
        /// Expected terminal.
        expected: SymbolId,
        /// Terminal found in the input.
        found: SymbolId,
        /// Token position.
        position: usize,
    },
    /// Input remained after the prediction stack emptied.
    TrailingInput {
        /// Position of the first unconsumed token.
        position: usize,
    },
}

impl fmt::Display for LlParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LlParseError::NoPrediction { position, .. } => {
                write!(f, "no prediction at token {position}")
            }
            LlParseError::Mismatch { position, .. } => {
                write!(f, "token mismatch at position {position}")
            }
            LlParseError::TrailingInput { position } => {
                write!(f, "trailing input at position {position}")
            }
        }
    }
}

impl std::error::Error for LlParseError {}

/// A table-driven predictive (LL(1)) parser.
#[derive(Debug)]
pub struct LlParser<'g> {
    grammar: &'g Grammar,
    table: LlTable,
}

impl<'g> LlParser<'g> {
    /// Builds the LL(1) table for `grammar` and wraps it in a parser.
    pub fn new(grammar: &'g Grammar) -> Self {
        LlParser {
            grammar,
            table: LlTable::build(grammar),
        }
    }

    /// The underlying table (e.g. to inspect conflicts).
    pub fn table(&self) -> &LlTable {
        &self.table
    }

    /// Recognises `tokens`; `Ok(())` means the sentence is accepted.
    pub fn recognize(&self, tokens: &[SymbolId]) -> Result<(), LlParseError> {
        let eof = self.grammar.eof_symbol();
        let mut stack: Vec<SymbolId> = vec![self.table.start_symbol()];
        let mut pos = 0usize;
        while let Some(top) = stack.pop() {
            let lookahead = tokens.get(pos).copied().unwrap_or(eof);
            if self.grammar.is_terminal(top) {
                if top == lookahead {
                    pos += 1;
                } else {
                    return Err(LlParseError::Mismatch {
                        expected: top,
                        found: lookahead,
                        position: pos,
                    });
                }
            } else {
                let Some(rule_id) = self.table.predict(top, lookahead) else {
                    return Err(LlParseError::NoPrediction {
                        nonterminal: top,
                        lookahead,
                        position: pos,
                    });
                };
                let rule = self.grammar.rule(rule_id);
                for &s in rule.rhs.iter().rev() {
                    stack.push(s);
                }
            }
        }
        if pos == tokens.len() {
            Ok(())
        } else {
            Err(LlParseError::TrailingInput { position: pos })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipg_grammar::fixtures;
    use ipg_lr::tokenize_names;

    #[test]
    fn statements_grammar_is_ll1_and_parses() {
        let g = fixtures::statements();
        let parser = LlParser::new(&g);
        assert!(parser.table().is_ll1(), "{:?}", parser.table().conflicts());
        for s in [
            "id := num",
            "if id then id := num else while num do id := id",
            "begin id := num ; id := id end",
        ] {
            let tokens = tokenize_names(&g, s).unwrap();
            assert!(parser.recognize(&tokens).is_ok(), "sentence `{s}`");
        }
        for s in ["id :=", "begin id := num", "if id then"] {
            let tokens = tokenize_names(&g, s).unwrap();
            assert!(parser.recognize(&tokens).is_err(), "sentence `{s}`");
        }
    }

    #[test]
    fn right_recursive_lists_are_ll1() {
        let g = fixtures::right_recursive_list();
        let parser = LlParser::new(&g);
        // L ::= x , L | x is not LL(1) as written (common prefix), so the
        // table has conflicts; the point of this test is that the conflict
        // is *detected*, mirroring Fig. 2.1's "-" entries.
        assert!(!parser.table().is_ll1());
        assert!(!parser.table().conflicts().is_empty());
    }

    #[test]
    fn left_recursion_is_rejected_as_conflict() {
        let g = fixtures::left_recursive_list();
        let table = LlTable::build(&g);
        assert!(!table.is_ll1());
        let conflicts = table.conflicts();
        assert!(!conflicts.is_empty());
        assert!(conflicts[0].rules.len() >= 2);
    }

    #[test]
    fn ambiguous_grammars_are_rejected_as_conflict() {
        let g = fixtures::booleans();
        let table = LlTable::build(&g);
        assert!(!table.is_ll1());
    }

    #[test]
    fn epsilon_rules_use_follow_sets() {
        // S ::= A b ; A ::= a | <empty> is LL(1).
        let g = ipg_grammar::parse_bnf(
            r#"
            S ::= A "b"
            A ::= "a"
            A ::=
            START ::= S
            "#,
        )
        .unwrap();
        let parser = LlParser::new(&g);
        assert!(parser.table().is_ll1());
        assert!(parser.recognize(&tokenize_names(&g, "a b").unwrap()).is_ok());
        assert!(parser.recognize(&tokenize_names(&g, "b").unwrap()).is_ok());
        assert!(parser.recognize(&tokenize_names(&g, "a").unwrap()).is_err());
        assert!(parser
            .recognize(&tokenize_names(&g, "a b b").unwrap())
            .is_err());
    }

    #[test]
    fn table_render_and_entry_count() {
        let g = fixtures::statements();
        let table = LlTable::build(&g);
        assert!(table.num_entries() > 5);
        let text = table.render(&g);
        assert!(text.contains("M[STMT, if]"));
    }

    #[test]
    fn error_messages_render() {
        let g = fixtures::statements();
        let parser = LlParser::new(&g);
        let err = parser
            .recognize(&tokenize_names(&g, "id := num num").unwrap())
            .unwrap_err();
        assert!(err.to_string().contains("position"));
    }
}
