//! The mutable context-free grammar at the heart of the IPG system.
//!
//! The paper's algorithms treat `Grammar` as a global that is updated by
//! `ADD-RULE` / `DELETE-RULE` while (lazy) parse-table generation is going
//! on. This module provides exactly that: a grammar that can be modified
//! rule by rule, keeps stable [`RuleId`]s across modifications, and exposes
//! a monotonically increasing [`Grammar::version`] so that derived
//! structures (parse tables, item-set graphs, scanners) can detect
//! staleness.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::rule::{Associativity, Rule, RuleId};
use crate::symbol::{SymbolId, SymbolKind, SymbolTable};

/// Name automatically interned for the start non-terminal.
pub const START_NAME: &str = "START";
/// Name automatically interned for the end-of-input terminal.
pub const EOF_NAME: &str = "$";

/// Errors reported by [`Grammar::validate`] and the rule-modification API.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum GrammarError {
    /// The start symbol has no production.
    MissingStartRule,
    /// The start symbol occurs in the right-hand side of a rule; the paper
    /// forbids this (START may not be used in the right-hand side).
    StartInRhs(RuleId),
    /// A rule's left-hand side is a terminal.
    TerminalLhs(RuleId),
    /// The end-of-input marker `$` occurs in a rule.
    EofInRule(RuleId),
    /// A non-terminal is used but has no active production.
    UndefinedNonTerminal(SymbolId),
    /// An identical active rule already exists.
    DuplicateRule(RuleId),
    /// The referenced rule does not exist or is not active.
    NoSuchRule,
}

impl fmt::Display for GrammarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GrammarError::MissingStartRule => write!(f, "the start symbol has no production"),
            GrammarError::StartInRhs(r) => {
                write!(f, "START occurs in the right-hand side of {r:?}")
            }
            GrammarError::TerminalLhs(r) => {
                write!(f, "rule {r:?} has a terminal as its left-hand side")
            }
            GrammarError::EofInRule(r) => {
                write!(f, "the end-of-input marker occurs in rule {r:?}")
            }
            GrammarError::UndefinedNonTerminal(s) => {
                write!(f, "non-terminal {s:?} is used but never defined")
            }
            GrammarError::DuplicateRule(r) => {
                write!(f, "an identical rule already exists as {r:?}")
            }
            GrammarError::NoSuchRule => write!(f, "no such (active) rule"),
        }
    }
}

impl std::error::Error for GrammarError {}

/// A modifiable context-free grammar.
///
/// # Structure
///
/// * Symbols are interned in a [`SymbolTable`]; the special non-terminal
///   `START` and the end-marker terminal `$` always exist.
/// * Rules live in an arena and are never physically removed;
///   [`Grammar::remove_rule`] merely deactivates a rule, and re-adding an
///   identical rule re-activates the original [`RuleId`]. This mirrors the
///   paper's treatment of grammar modification, where item-set kernels must
///   remain comparable across modifications.
/// * Every modification bumps [`Grammar::version`].
///
/// # Example
///
/// ```
/// use ipg_grammar::Grammar;
///
/// let mut g = Grammar::new();
/// let b = g.nonterminal("B");
/// let t = g.terminal("true");
/// let f = g.terminal("false");
/// g.add_rule(b, vec![t]);
/// g.add_rule(b, vec![f]);
/// g.add_start_rule(b);
/// assert_eq!(g.num_active_rules(), 3);
/// g.validate().unwrap();
/// ```
///
/// # Fork cost
///
/// The epoch serving layer forks the grammar on every modification, so the
/// storage is **structurally shared**: rules live in `Arc`'d chunks of
/// [`RULE_CHUNK`] slots, the activation bits and the by-LHS rule index sit
/// behind their own `Arc`s, and the symbol table shares one `Arc`'d block.
/// `Clone` therefore costs O(#chunks) pointer bumps, and an edit
/// copies-on-write only what it touches: flipping an activation bit copies
/// the (plain-`bool`) bit vector, re-adding or deleting an existing rule
/// touches nothing else, and only a genuinely *new* rule or symbol copies
/// a rule chunk / the index / the symbol block.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Grammar {
    symbols: SymbolTable,
    /// Rule arena in `Arc`'d chunks of [`RULE_CHUNK`] slots (append-only;
    /// removal only flips `active`).
    rules: Vec<Arc<Vec<Rule>>>,
    /// Number of rule slots across all chunks.
    num_rules: usize,
    /// Activation bits, packed 64 per word so the copy-on-write an edit
    /// pays is a short `memcpy` even for thousand-rule grammars.
    active: Arc<Vec<u64>>,
    /// `lhs -> rule ids in id order`, over *all* slots (active or not).
    /// Only mutated when a new rule slot is created.
    by_lhs: Arc<HashMap<SymbolId, Vec<RuleId>>>,
    start: SymbolId,
    eof: SymbolId,
    version: u64,
}

/// Number of rule slots per `Arc`'d storage chunk (see [`Grammar`]).
pub const RULE_CHUNK: usize = 256;

impl Default for Grammar {
    fn default() -> Self {
        Self::new()
    }
}

impl Grammar {
    /// Creates an empty grammar containing only the `START` non-terminal and
    /// the `$` end-marker terminal.
    pub fn new() -> Self {
        let mut symbols = SymbolTable::new();
        let start = symbols.intern(START_NAME, SymbolKind::NonTerminal);
        let eof = symbols.intern(EOF_NAME, SymbolKind::Terminal);
        Grammar {
            symbols,
            rules: Vec::new(),
            num_rules: 0,
            active: Arc::new(Vec::new()),
            by_lhs: Arc::new(HashMap::new()),
            start,
            eof,
            version: 0,
        }
    }

    /// The start non-terminal `START`.
    pub fn start_symbol(&self) -> SymbolId {
        self.start
    }

    /// The end-of-input terminal `$`.
    pub fn eof_symbol(&self) -> SymbolId {
        self.eof
    }

    /// The symbol table of this grammar.
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// Monotonically increasing modification counter. Bumped by every rule
    /// addition/removal and by symbol interning.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Interns (or looks up) a terminal symbol.
    pub fn terminal(&mut self, name: &str) -> SymbolId {
        let before = self.symbols.len();
        let id = self.symbols.intern(name, SymbolKind::Terminal);
        if self.symbols.len() != before {
            self.version += 1;
        }
        id
    }

    /// Interns (or looks up) a non-terminal symbol.
    pub fn nonterminal(&mut self, name: &str) -> SymbolId {
        let before = self.symbols.len();
        let id = self.symbols.intern(name, SymbolKind::NonTerminal);
        if self.symbols.len() != before {
            self.version += 1;
        }
        id
    }

    /// Looks up a symbol by name without interning.
    pub fn symbol(&self, name: &str) -> Option<SymbolId> {
        self.symbols.lookup(name)
    }

    /// Returns the name of a symbol.
    pub fn name(&self, id: SymbolId) -> &str {
        self.symbols.name(id)
    }

    /// Returns `true` if `id` is a terminal.
    pub fn is_terminal(&self, id: SymbolId) -> bool {
        self.symbols.is_terminal(id)
    }

    /// Returns `true` if `id` is a non-terminal.
    pub fn is_nonterminal(&self, id: SymbolId) -> bool {
        self.symbols.is_nonterminal(id)
    }

    /// Adds the rule `lhs ::= rhs` and returns its id.
    ///
    /// If an identical rule was added and later removed, its original id is
    /// re-activated; if an identical rule is already active, its id is
    /// returned unchanged (the grammar is a *set* of rules, as in the
    /// paper).
    pub fn add_rule(&mut self, lhs: SymbolId, rhs: Vec<SymbolId>) -> RuleId {
        self.add_rule_with(lhs, rhs, None, Associativity::None, 0)
    }

    /// Adds a rule with a label (constructor name), associativity and
    /// precedence. See [`Grammar::add_rule`] for the identity semantics.
    pub fn add_rule_with(
        &mut self,
        lhs: SymbolId,
        rhs: Vec<SymbolId>,
        label: Option<String>,
        assoc: Associativity,
        precedence: u32,
    ) -> RuleId {
        assert!(
            self.symbols.is_nonterminal(lhs),
            "left-hand side of a rule must be a non-terminal"
        );
        if let Some(existing) = self.find_rule(lhs, &rhs) {
            if !self.is_active(existing) {
                self.set_active(existing, true);
                self.version += 1;
            }
            return existing;
        }
        let id = RuleId(self.num_rules as u32);
        if self.num_rules.is_multiple_of(RULE_CHUNK) {
            self.rules.push(Arc::new(Vec::with_capacity(RULE_CHUNK)));
        }
        Arc::make_mut(self.rules.last_mut().expect("chunk just ensured")).push(Rule {
            id,
            lhs,
            rhs,
            label,
            assoc,
            precedence,
        });
        self.num_rules += 1;
        if self.num_rules > self.active.len() * 64 {
            Arc::make_mut(&mut self.active).push(0);
        }
        self.set_active(id, true);
        Arc::make_mut(&mut self.by_lhs).entry(lhs).or_default().push(id);
        self.version += 1;
        id
    }

    fn set_active(&mut self, id: RuleId, value: bool) {
        let words = Arc::make_mut(&mut self.active);
        let mask = 1u64 << (id.index() % 64);
        if value {
            words[id.index() / 64] |= mask;
        } else {
            words[id.index() / 64] &= !mask;
        }
    }

    /// Adds the production `START ::= nt`.
    pub fn add_start_rule(&mut self, nt: SymbolId) -> RuleId {
        let start = self.start;
        self.add_rule(start, vec![nt])
    }

    /// Finds the id of the rule `lhs ::= rhs`, whether active or not.
    /// Served from the by-LHS index, so the cost is proportional to the
    /// number of alternatives of `lhs`, not to the size of the grammar.
    pub fn find_rule(&self, lhs: SymbolId, rhs: &[SymbolId]) -> Option<RuleId> {
        self.by_lhs
            .get(&lhs)?
            .iter()
            .copied()
            .find(|&id| self.rule(id).rhs == rhs)
    }

    /// Deactivates the rule with id `id`. Returns an error if the rule does
    /// not exist or is already inactive.
    pub fn remove_rule(&mut self, id: RuleId) -> Result<(), GrammarError> {
        if !self.is_active(id) {
            return Err(GrammarError::NoSuchRule);
        }
        self.set_active(id, false);
        self.version += 1;
        Ok(())
    }

    /// Deactivates the rule `lhs ::= rhs` and returns its id.
    pub fn remove_rule_matching(
        &mut self,
        lhs: SymbolId,
        rhs: &[SymbolId],
    ) -> Result<RuleId, GrammarError> {
        let id = self
            .find_rule(lhs, rhs)
            .filter(|&id| self.is_active(id))
            .ok_or(GrammarError::NoSuchRule)?;
        self.remove_rule(id)?;
        Ok(id)
    }

    /// Returns the rule with id `id`, active or not.
    ///
    /// # Panics
    /// Panics if the id does not belong to this grammar.
    pub fn rule(&self, id: RuleId) -> &Rule {
        &self.rules[id.index() / RULE_CHUNK][id.index() % RULE_CHUNK]
    }

    /// Returns `true` if the rule is currently part of the grammar.
    pub fn is_active(&self, id: RuleId) -> bool {
        if id.index() >= self.num_rules {
            return false;
        }
        self.active[id.index() / 64] & (1u64 << (id.index() % 64)) != 0
    }

    /// Iterates over the active rules in id order.
    pub fn rules(&self) -> impl Iterator<Item = &Rule> {
        self.all_rules().filter(|r| self.is_active(r.id))
    }

    /// Iterates over every rule ever added, including deactivated ones.
    pub fn all_rules(&self) -> impl Iterator<Item = &Rule> {
        self.rules.iter().flat_map(|chunk| chunk.iter())
    }

    /// Iterates over the active rules whose left-hand side is `lhs`, in id
    /// order. Served from the by-LHS index (the closure computation of the
    /// parser generator calls this per non-terminal, so it must not scan
    /// the whole rule arena).
    pub fn rules_for(&self, lhs: SymbolId) -> impl Iterator<Item = &Rule> {
        self.by_lhs
            .get(&lhs)
            .into_iter()
            .flatten()
            .copied()
            .filter(|&id| self.is_active(id))
            .map(|id| self.rule(id))
    }

    /// Number of active rules.
    pub fn num_active_rules(&self) -> usize {
        self.active.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Total number of rule slots (active + deactivated).
    pub fn num_rule_slots(&self) -> usize {
        self.num_rules
    }

    /// `(storage address, modeled bytes)` of every rule-arena chunk.
    /// Forks that structurally share a chunk report the *same* address, so
    /// a registry can sum resident bytes across tenants deduplicated by
    /// pointer identity. The byte model counts each rule's inline slot,
    /// its right-hand side and its label; the activation bitmap, by-LHS
    /// index and symbol table are bounded by (and small next to) the rule
    /// chunks and are left out of the model.
    pub fn arena_accounting(&self) -> Vec<(usize, usize)> {
        self.rules
            .iter()
            .map(|chunk| {
                let bytes: usize = chunk
                    .iter()
                    .map(|rule| {
                        std::mem::size_of::<Rule>()
                            + rule.rhs.len() * std::mem::size_of::<SymbolId>()
                            + rule.label.as_ref().map_or(0, |l| l.len())
                    })
                    .sum();
                (Arc::as_ptr(chunk) as usize, bytes)
            })
            .collect()
    }

    /// Total modeled bytes of the rule arena (see
    /// [`Grammar::arena_accounting`]).
    pub fn arena_bytes(&self) -> usize {
        self.arena_accounting().iter().map(|&(_, b)| b).sum()
    }

    /// Forces this clone to own every piece of its storage, copying
    /// whatever is still shared with other forks. Benchmarks use this to
    /// reproduce the cost of a structurally unshared (deep) grammar fork.
    pub fn unshare(&mut self) {
        for chunk in &mut self.rules {
            *chunk = Arc::new((**chunk).clone());
        }
        self.active = Arc::new((*self.active).clone());
        self.by_lhs = Arc::new((*self.by_lhs).clone());
        self.symbols.unshare();
    }

    /// Builds a map from non-terminal to its active rules. Convenience for
    /// algorithms that repeatedly take closures.
    pub fn rules_by_lhs(&self) -> HashMap<SymbolId, Vec<RuleId>> {
        let mut map: HashMap<SymbolId, Vec<RuleId>> = HashMap::new();
        for r in self.rules() {
            map.entry(r.lhs).or_default().push(r.id);
        }
        map
    }

    /// Checks the structural well-formedness constraints assumed by the
    /// paper's algorithms.
    pub fn validate(&self) -> Result<(), GrammarError> {
        if self.rules_for(self.start).next().is_none() {
            return Err(GrammarError::MissingStartRule);
        }
        for r in self.rules() {
            if self.symbols.is_terminal(r.lhs) {
                return Err(GrammarError::TerminalLhs(r.id));
            }
            if r.lhs == self.eof || r.rhs.contains(&self.eof) {
                return Err(GrammarError::EofInRule(r.id));
            }
            if r.rhs.contains(&self.start) {
                return Err(GrammarError::StartInRhs(r.id));
            }
        }
        // Every non-terminal used in a right-hand side must have a rule.
        for r in self.rules() {
            for &s in &r.rhs {
                if self.symbols.is_nonterminal(s) && self.rules_for(s).next().is_none() {
                    return Err(GrammarError::UndefinedNonTerminal(s));
                }
            }
        }
        Ok(())
    }

    /// Renders the grammar as numbered BNF rules (active rules only).
    pub fn display(&self) -> GrammarDisplay<'_> {
        GrammarDisplay { grammar: self }
    }
}

/// Helper returned by [`Grammar::display`].
pub struct GrammarDisplay<'a> {
    grammar: &'a Grammar,
}

impl fmt::Display for GrammarDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for rule in self.grammar.rules() {
            writeln!(
                f,
                "{:>3}  {}",
                rule.id.index(),
                rule.display(self.grammar.symbols())
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn booleans() -> Grammar {
        let mut g = Grammar::new();
        let b = g.nonterminal("B");
        let t = g.terminal("true");
        let fa = g.terminal("false");
        let or = g.terminal("or");
        let and = g.terminal("and");
        g.add_rule(b, vec![t]);
        g.add_rule(b, vec![fa]);
        g.add_rule(b, vec![b, or, b]);
        g.add_rule(b, vec![b, and, b]);
        g.add_start_rule(b);
        g
    }

    #[test]
    fn new_grammar_has_start_and_eof() {
        let g = Grammar::new();
        assert_eq!(g.name(g.start_symbol()), START_NAME);
        assert_eq!(g.name(g.eof_symbol()), EOF_NAME);
        assert!(g.is_nonterminal(g.start_symbol()));
        assert!(g.is_terminal(g.eof_symbol()));
    }

    #[test]
    fn booleans_grammar_counts() {
        let g = booleans();
        assert_eq!(g.num_active_rules(), 5);
        assert!(g.validate().is_ok());
        let b = g.symbol("B").unwrap();
        assert_eq!(g.rules_for(b).count(), 4);
    }

    #[test]
    fn add_rule_is_idempotent() {
        let mut g = booleans();
        let b = g.symbol("B").unwrap();
        let t = g.symbol("true").unwrap();
        let before = g.version();
        let id1 = g.add_rule(b, vec![t]);
        assert_eq!(g.num_active_rules(), 5);
        assert_eq!(g.version(), before, "re-adding an active rule is a no-op");
        let id2 = g.find_rule(b, &[t]).unwrap();
        assert_eq!(id1, id2);
    }

    #[test]
    fn remove_then_re_add_reactivates_same_id() {
        let mut g = booleans();
        let b = g.symbol("B").unwrap();
        let t = g.symbol("true").unwrap();
        let id = g.find_rule(b, &[t]).unwrap();
        g.remove_rule(id).unwrap();
        assert!(!g.is_active(id));
        assert_eq!(g.num_active_rules(), 4);
        let id2 = g.add_rule(b, vec![t]);
        assert_eq!(id, id2);
        assert!(g.is_active(id));
        assert_eq!(g.num_rule_slots(), 5, "no new slot allocated");
    }

    #[test]
    fn remove_missing_rule_is_an_error() {
        let mut g = booleans();
        let b = g.symbol("B").unwrap();
        let and = g.symbol("and").unwrap();
        assert_eq!(
            g.remove_rule_matching(b, &[and]).unwrap_err(),
            GrammarError::NoSuchRule
        );
        let id = g.find_rule(b, &[g.symbol("true").unwrap()]).unwrap();
        g.remove_rule(id).unwrap();
        assert_eq!(g.remove_rule(id).unwrap_err(), GrammarError::NoSuchRule);
    }

    #[test]
    fn version_bumps_on_modification() {
        let mut g = Grammar::new();
        let v0 = g.version();
        let b = g.nonterminal("B");
        assert!(g.version() > v0);
        let t = g.terminal("t");
        let v1 = g.version();
        g.add_rule(b, vec![t]);
        assert!(g.version() > v1);
        let v2 = g.version();
        let id = g.find_rule(b, &[t]).unwrap();
        g.remove_rule(id).unwrap();
        assert!(g.version() > v2);
    }

    #[test]
    fn validate_rejects_start_in_rhs() {
        let mut g = Grammar::new();
        let b = g.nonterminal("B");
        let start = g.start_symbol();
        let t = g.terminal("t");
        g.add_rule(b, vec![t]);
        g.add_start_rule(b);
        g.add_rule(b, vec![start]);
        assert!(matches!(g.validate(), Err(GrammarError::StartInRhs(_))));
    }

    #[test]
    fn validate_rejects_missing_start_rule() {
        let mut g = Grammar::new();
        let b = g.nonterminal("B");
        let t = g.terminal("t");
        g.add_rule(b, vec![t]);
        assert_eq!(g.validate(), Err(GrammarError::MissingStartRule));
    }

    #[test]
    fn validate_rejects_undefined_nonterminal() {
        let mut g = Grammar::new();
        let b = g.nonterminal("B");
        let c = g.nonterminal("C");
        g.add_rule(b, vec![c]);
        g.add_start_rule(b);
        assert_eq!(g.validate(), Err(GrammarError::UndefinedNonTerminal(c)));
    }

    #[test]
    fn validate_rejects_eof_in_rule() {
        let mut g = Grammar::new();
        let b = g.nonterminal("B");
        let eof = g.eof_symbol();
        g.add_rule(b, vec![eof]);
        g.add_start_rule(b);
        assert!(matches!(g.validate(), Err(GrammarError::EofInRule(_))));
    }

    #[test]
    fn display_lists_active_rules_only() {
        let mut g = booleans();
        let b = g.symbol("B").unwrap();
        let t = g.symbol("true").unwrap();
        let id = g.find_rule(b, &[t]).unwrap();
        g.remove_rule(id).unwrap();
        let text = g.display().to_string();
        assert!(!text.contains("B ::= true"));
        assert!(text.contains("B ::= false"));
        assert!(text.contains("START ::= B"));
    }

    #[test]
    fn rules_by_lhs_groups_rules() {
        let g = booleans();
        let map = g.rules_by_lhs();
        let b = g.symbol("B").unwrap();
        assert_eq!(map[&b].len(), 4);
        assert_eq!(map[&g.start_symbol()].len(), 1);
    }

    #[test]
    fn error_display_is_informative() {
        let e = GrammarError::MissingStartRule;
        assert!(e.to_string().contains("start symbol"));
    }

    #[test]
    fn clone_shares_storage_until_written() {
        let g = booleans();
        let mut fork = g.clone();
        assert!(fork.symbols().shares_storage_with(g.symbols()));
        assert!(Arc::ptr_eq(&g.rules[0], &fork.rules[0]));
        assert!(Arc::ptr_eq(&g.active, &fork.active));
        assert!(Arc::ptr_eq(&g.by_lhs, &fork.by_lhs));
        // Deactivating an existing rule copies only the activation bits.
        let b = fork.symbol("B").unwrap();
        let t = fork.symbol("true").unwrap();
        let id = fork.find_rule(b, &[t]).unwrap();
        fork.remove_rule(id).unwrap();
        assert!(Arc::ptr_eq(&g.rules[0], &fork.rules[0]));
        assert!(Arc::ptr_eq(&g.by_lhs, &fork.by_lhs));
        assert!(!Arc::ptr_eq(&g.active, &fork.active));
        assert!(fork.symbols().shares_storage_with(g.symbols()));
        // The original is untouched.
        assert!(g.is_active(id));
        assert!(!fork.is_active(id));
        // Re-activating needs no new slot and leaves the arena shared.
        fork.add_rule(b, vec![t]);
        assert!(Arc::ptr_eq(&g.rules[0], &fork.rules[0]));
        assert_eq!(fork.num_rule_slots(), g.num_rule_slots());
    }

    #[test]
    fn new_rule_copies_only_the_written_chunk() {
        let mut g = Grammar::new();
        let b = g.nonterminal("B");
        // Fill a bit more than one chunk so two chunks exist.
        for i in 0..(RULE_CHUNK + 4) {
            let t = g.terminal(&format!("t{i}"));
            g.add_rule(b, vec![t]);
        }
        g.add_start_rule(b);
        let mut fork = g.clone();
        let extra = fork.terminal("textra");
        fork.add_rule(b, vec![extra]);
        // Appending went into the last chunk; the full first chunk is
        // still shared with the original.
        assert!(Arc::ptr_eq(&g.rules[0], &fork.rules[0]));
        assert!(!Arc::ptr_eq(&g.rules[1], &fork.rules[1]));
        assert_eq!(fork.num_rule_slots(), g.num_rule_slots() + 1);
        assert!(fork.validate().is_ok());
    }

    #[test]
    fn unshare_copies_everything() {
        let g = booleans();
        let mut fork = g.clone();
        fork.unshare();
        assert!(!Arc::ptr_eq(&g.rules[0], &fork.rules[0]));
        assert!(!Arc::ptr_eq(&g.active, &fork.active));
        assert!(!Arc::ptr_eq(&g.by_lhs, &fork.by_lhs));
        assert!(!fork.symbols().shares_storage_with(g.symbols()));
        assert_eq!(fork.num_active_rules(), g.num_active_rules());
    }
}
