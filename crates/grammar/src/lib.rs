//! # ipg-grammar
//!
//! Context-free grammar representation for the IPG reproduction
//! (*Incremental Generation of Parsers*, Heering, Klint & Rekers).
//!
//! This crate provides the substrate every other crate builds on:
//!
//! * interned [`SymbolId`]s and a [`SymbolTable`] ([`symbol`]),
//! * productions with stable [`RuleId`]s ([`rule`]),
//! * a *modifiable* [`Grammar`] whose rules can be added and removed one at
//!   a time, exactly as the paper's `ADD-RULE` / `DELETE-RULE` require
//!   ([`grammar`]),
//! * nullability / FIRST / FOLLOW / reachability analysis used by the
//!   LALR(1), SLR(1), LL(1) and Earley baselines ([`analysis`]),
//! * a small textual BNF notation for fixtures and tests ([`bnf`]),
//! * modular grammar composition in the spirit of SDF modules
//!   ([`modules`]), and
//! * the grammars that appear in the paper ([`fixtures`]).
//!
//! ## Quick start
//!
//! ```
//! use ipg_grammar::{parse_bnf, GrammarAnalysis};
//!
//! let grammar = parse_bnf(r#"
//!     B ::= "true" | "false" | B "or" B | B "and" B
//!     START ::= B
//! "#).unwrap();
//! grammar.validate().unwrap();
//!
//! let analysis = GrammarAnalysis::compute(&grammar);
//! let b = grammar.symbol("B").unwrap();
//! assert_eq!(analysis.first(b).len(), 2); // { true, false }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analysis;
pub mod bnf;
pub mod fixtures;
pub mod grammar;
pub mod modules;
pub mod rule;
pub mod symbol;

pub use analysis::GrammarAnalysis;
pub use bnf::{parse_bnf, BnfError};
pub use grammar::{Grammar, GrammarError, EOF_NAME, RULE_CHUNK, START_NAME};
pub use modules::{ComposeError, GrammarModule, ModuleSet, NamedRule, NamedSymbol, Visibility};
pub use rule::{Associativity, Rule, RuleId};
pub use symbol::{Symbol, SymbolId, SymbolKind, SymbolTable};
