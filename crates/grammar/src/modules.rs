//! Modular grammar composition.
//!
//! The paper's motivation (§1) is languages with user-defined syntax where
//! "each import of a module extends the syntax of the importing module with
//! the (visible) syntax of the imported module" (LITHE, OBJ, ASF/SDF). This
//! module provides that substrate: named grammar modules with imports and
//! hidden/visible rule sets, and a `compose` operation that flattens a
//! module graph into a single [`Grammar`]. The incremental generator can
//! then be fed rule-by-rule deltas when a module is added to or removed
//! from an import graph.

use std::collections::{HashMap, HashSet};
use std::fmt;

use crate::grammar::Grammar;
use crate::rule::Associativity;

/// Visibility of a rule inside a module.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Visibility {
    /// Exported to importing modules (the default).
    #[default]
    Visible,
    /// Only available within the defining module.
    Hidden,
}

/// A rule written with symbol *names* rather than interned ids, so modules
/// can be authored independently of a concrete [`Grammar`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct NamedRule {
    /// Left-hand side non-terminal name.
    pub lhs: String,
    /// Right-hand side element names (see [`NamedSymbol`]).
    pub rhs: Vec<NamedSymbol>,
    /// Visibility towards importing modules.
    pub visibility: Visibility,
    /// Optional constructor label.
    pub label: Option<String>,
    /// Associativity attribute.
    pub assoc: Associativity,
}

/// A right-hand-side element of a [`NamedRule`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum NamedSymbol {
    /// A terminal (literal keyword or token sort).
    Terminal(String),
    /// A non-terminal (sort).
    NonTerminal(String),
}

impl NamedSymbol {
    /// Shorthand constructor for a terminal.
    pub fn t(name: &str) -> Self {
        NamedSymbol::Terminal(name.to_owned())
    }

    /// Shorthand constructor for a non-terminal.
    pub fn nt(name: &str) -> Self {
        NamedSymbol::NonTerminal(name.to_owned())
    }
}

/// A named collection of rules plus the names of the modules it imports.
#[derive(Clone, Debug, Default)]
pub struct GrammarModule {
    /// Module name (e.g. `"Booleans"`).
    pub name: String,
    /// Names of imported modules.
    pub imports: Vec<String>,
    /// Rules defined by this module.
    pub rules: Vec<NamedRule>,
    /// Optional start sort; the start sort of the *root* module of a
    /// composition becomes `START ::= sort`.
    pub start_sort: Option<String>,
}

impl GrammarModule {
    /// Creates an empty module.
    pub fn new(name: &str) -> Self {
        GrammarModule {
            name: name.to_owned(),
            ..Default::default()
        }
    }

    /// Adds an import.
    pub fn import(mut self, name: &str) -> Self {
        self.imports.push(name.to_owned());
        self
    }

    /// Declares the start sort.
    pub fn start(mut self, sort: &str) -> Self {
        self.start_sort = Some(sort.to_owned());
        self
    }

    /// Adds a visible rule.
    pub fn rule(mut self, lhs: &str, rhs: Vec<NamedSymbol>) -> Self {
        self.rules.push(NamedRule {
            lhs: lhs.to_owned(),
            rhs,
            visibility: Visibility::Visible,
            label: None,
            assoc: Associativity::None,
        });
        self
    }

    /// Adds a hidden rule.
    pub fn hidden_rule(mut self, lhs: &str, rhs: Vec<NamedSymbol>) -> Self {
        self.rules.push(NamedRule {
            lhs: lhs.to_owned(),
            rhs,
            visibility: Visibility::Hidden,
            label: None,
            assoc: Associativity::None,
        });
        self
    }
}

/// Errors produced by [`ModuleSet::compose`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ComposeError {
    /// An import names a module that is not in the set.
    UnknownModule {
        /// The module whose import list contains the unknown name.
        importer: String,
        /// The name that could not be resolved.
        imported: String,
    },
    /// The import graph contains a cycle through the named module.
    ImportCycle(String),
    /// The root module does not declare a start sort.
    MissingStartSort(String),
    /// The requested root module is not in the set.
    UnknownRoot(String),
}

impl fmt::Display for ComposeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ComposeError::UnknownModule { importer, imported } => {
                write!(f, "module `{importer}` imports unknown module `{imported}`")
            }
            ComposeError::ImportCycle(m) => write!(f, "import cycle through module `{m}`"),
            ComposeError::MissingStartSort(m) => {
                write!(f, "root module `{m}` does not declare a start sort")
            }
            ComposeError::UnknownRoot(m) => write!(f, "unknown root module `{m}`"),
        }
    }
}

impl std::error::Error for ComposeError {}

/// A set of modules that can be composed into a flat grammar.
#[derive(Clone, Debug, Default)]
pub struct ModuleSet {
    modules: HashMap<String, GrammarModule>,
}

impl ModuleSet {
    /// Creates an empty module set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds (or replaces) a module.
    pub fn add(&mut self, module: GrammarModule) {
        self.modules.insert(module.name.clone(), module);
    }

    /// Looks up a module by name.
    pub fn get(&self, name: &str) -> Option<&GrammarModule> {
        self.modules.get(name)
    }

    /// Number of modules in the set.
    pub fn len(&self) -> usize {
        self.modules.len()
    }

    /// Returns `true` if the set contains no modules.
    pub fn is_empty(&self) -> bool {
        self.modules.is_empty()
    }

    /// Flattens the import closure of `root` into a single [`Grammar`].
    ///
    /// Rules of the root module are always included; rules of imported
    /// modules are included only if they are [`Visibility::Visible`].
    /// Imports are transitive. The root's start sort becomes the grammar's
    /// `START` production.
    pub fn compose(&self, root: &str) -> Result<Grammar, ComposeError> {
        let root_module = self
            .modules
            .get(root)
            .ok_or_else(|| ComposeError::UnknownRoot(root.to_owned()))?;
        let start_sort = root_module
            .start_sort
            .clone()
            .ok_or_else(|| ComposeError::MissingStartSort(root.to_owned()))?;

        // Depth-first traversal of the import graph with cycle detection.
        let mut order = Vec::new();
        let mut visiting = HashSet::new();
        let mut visited = HashSet::new();
        self.visit(root, &mut visiting, &mut visited, &mut order)?;

        let mut grammar = Grammar::new();
        for module_name in &order {
            let module = &self.modules[module_name];
            let is_root = module_name == root;
            for rule in &module.rules {
                if !is_root && rule.visibility == Visibility::Hidden {
                    continue;
                }
                let lhs = grammar.nonterminal(&rule.lhs);
                let rhs = rule
                    .rhs
                    .iter()
                    .map(|s| match s {
                        NamedSymbol::Terminal(n) => grammar.terminal(n),
                        NamedSymbol::NonTerminal(n) => grammar.nonterminal(n),
                    })
                    .collect();
                grammar.add_rule_with(lhs, rhs, rule.label.clone(), rule.assoc, 0);
            }
        }
        let start_nt = grammar.nonterminal(&start_sort);
        grammar.add_start_rule(start_nt);
        Ok(grammar)
    }

    fn visit(
        &self,
        name: &str,
        visiting: &mut HashSet<String>,
        visited: &mut HashSet<String>,
        order: &mut Vec<String>,
    ) -> Result<(), ComposeError> {
        if visited.contains(name) {
            return Ok(());
        }
        if !visiting.insert(name.to_owned()) {
            return Err(ComposeError::ImportCycle(name.to_owned()));
        }
        let module = self.modules.get(name).ok_or_else(|| {
            // Reported with the importer unknown here; callers of `visit`
            // always have a parent except for the root, which is checked in
            // `compose`.
            ComposeError::UnknownModule {
                importer: String::from("?"),
                imported: name.to_owned(),
            }
        })?;
        for import in &module.imports {
            if !self.modules.contains_key(import) {
                return Err(ComposeError::UnknownModule {
                    importer: name.to_owned(),
                    imported: import.clone(),
                });
            }
            self.visit(import, visiting, visited, order)?;
        }
        visiting.remove(name);
        visited.insert(name.to_owned());
        order.push(name.to_owned());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use NamedSymbol as S;

    fn booleans_module() -> GrammarModule {
        GrammarModule::new("Booleans")
            .start("B")
            .rule("B", vec![S::t("true")])
            .rule("B", vec![S::t("false")])
            .rule("B", vec![S::nt("B"), S::t("or"), S::nt("B")])
            .rule("B", vec![S::nt("B"), S::t("and"), S::nt("B")])
    }

    #[test]
    fn compose_single_module() {
        let mut set = ModuleSet::new();
        set.add(booleans_module());
        let g = set.compose("Booleans").unwrap();
        assert_eq!(g.num_active_rules(), 5);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn imports_extend_the_syntax() {
        let mut set = ModuleSet::new();
        set.add(booleans_module());
        set.add(
            GrammarModule::new("Conditionals")
                .import("Booleans")
                .start("E")
                .rule("E", vec![S::t("if"), S::nt("B"), S::t("then"), S::nt("E"), S::t("else"), S::nt("E")])
                .rule("E", vec![S::nt("B")]),
        );
        let g = set.compose("Conditionals").unwrap();
        // 4 boolean rules + 2 conditional rules + START
        assert_eq!(g.num_active_rules(), 7);
        assert!(g.symbol("if").is_some());
        assert!(g.validate().is_ok());
    }

    #[test]
    fn hidden_rules_are_not_exported() {
        let mut set = ModuleSet::new();
        set.add(
            GrammarModule::new("Lib")
                .start("X")
                .rule("X", vec![S::t("x")])
                .hidden_rule("X", vec![S::t("secret")]),
        );
        set.add(
            GrammarModule::new("App")
                .import("Lib")
                .start("X")
                .rule("X", vec![S::t("app")]),
        );
        let g = set.compose("App").unwrap();
        assert!(g.symbol("secret").is_none());
        // Hidden rules of the root itself are kept.
        let g2 = set.compose("Lib").unwrap();
        assert!(g2.symbol("secret").is_some());
    }

    #[test]
    fn transitive_imports_are_flattened() {
        let mut set = ModuleSet::new();
        set.add(GrammarModule::new("A").start("A").rule("A", vec![S::t("a")]));
        set.add(GrammarModule::new("B").import("A").start("B").rule("B", vec![S::nt("A"), S::t("b")]));
        set.add(GrammarModule::new("C").import("B").start("B").rule("B", vec![S::t("c")]));
        let g = set.compose("C").unwrap();
        assert!(g.symbol("a").is_some());
        assert_eq!(g.num_active_rules(), 4);
    }

    #[test]
    fn unknown_import_is_reported() {
        let mut set = ModuleSet::new();
        set.add(GrammarModule::new("A").import("Nope").start("A").rule("A", vec![S::t("a")]));
        match set.compose("A") {
            Err(ComposeError::UnknownModule { importer, imported }) => {
                assert_eq!(importer, "A");
                assert_eq!(imported, "Nope");
            }
            other => panic!("expected UnknownModule, got {other:?}"),
        }
    }

    #[test]
    fn import_cycle_is_reported() {
        let mut set = ModuleSet::new();
        set.add(GrammarModule::new("A").import("B").start("A").rule("A", vec![S::t("a")]));
        set.add(GrammarModule::new("B").import("A").rule("B", vec![S::t("b")]));
        assert!(matches!(set.compose("A"), Err(ComposeError::ImportCycle(_))));
    }

    #[test]
    fn missing_start_sort_is_reported() {
        let mut set = ModuleSet::new();
        set.add(GrammarModule::new("A").rule("A", vec![S::t("a")]));
        assert_eq!(
            set.compose("A").unwrap_err(),
            ComposeError::MissingStartSort("A".to_owned())
        );
    }

    #[test]
    fn unknown_root_is_reported() {
        let set = ModuleSet::new();
        assert_eq!(
            set.compose("A").unwrap_err(),
            ComposeError::UnknownRoot("A".to_owned())
        );
        assert!(set.is_empty());
    }
}
