//! Grammar rules (productions).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::symbol::{SymbolId, SymbolTable};

/// A stable identifier for a rule within one [`crate::Grammar`].
///
/// Rule ids are never reused: a deleted rule keeps its id (so that item-set
/// kernels referring to it remain comparable across grammar modifications),
/// and re-adding a textually identical rule re-activates the original id.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RuleId(pub(crate) u32);

impl RuleId {
    /// Returns the raw index of this rule inside its grammar.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a `RuleId` from a raw index previously obtained from
    /// [`RuleId::index`].
    #[inline]
    pub fn from_index(index: usize) -> Self {
        RuleId(index as u32)
    }
}

impl fmt::Debug for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rule#{}", self.0)
    }
}

/// Associativity attribute of a rule, as declared in SDF-style attribute
/// lists (`{left-assoc}` etc.). The LR generators use it to resolve
/// shift/reduce conflicts the same way Yacc does; the GLR parser ignores it.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default, Serialize, Deserialize)]
pub enum Associativity {
    /// No associativity declared.
    #[default]
    None,
    /// Left associative: prefer reduce over shift of the same operator.
    Left,
    /// Right associative: prefer shift over reduce of the same operator.
    Right,
    /// Non-associative: both shift and reduce are errors.
    NonAssoc,
}

/// A context-free production `lhs ::= rhs[0] rhs[1] ...`.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct Rule {
    /// Stable identity of the rule within its grammar.
    pub id: RuleId,
    /// Left-hand side non-terminal.
    pub lhs: SymbolId,
    /// Right-hand side symbols; empty for an epsilon rule.
    pub rhs: Vec<SymbolId>,
    /// Optional constructor/label name (SDF function name, semantic tag).
    pub label: Option<String>,
    /// Declared associativity (used only by conflict resolution).
    pub assoc: Associativity,
    /// Declared precedence level; higher binds tighter. `0` means undeclared.
    pub precedence: u32,
}

impl Rule {
    /// Number of symbols on the right-hand side.
    pub fn len(&self) -> usize {
        self.rhs.len()
    }

    /// Returns `true` for an epsilon production.
    pub fn is_empty(&self) -> bool {
        self.rhs.is_empty()
    }

    /// Renders the rule as `A ::= x y z` using `symbols` for names.
    pub fn display<'a>(&'a self, symbols: &'a SymbolTable) -> RuleDisplay<'a> {
        RuleDisplay { rule: self, symbols }
    }
}

/// Helper returned by [`Rule::display`].
pub struct RuleDisplay<'a> {
    rule: &'a Rule,
    symbols: &'a SymbolTable,
}

impl fmt::Display for RuleDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ::=", self.symbols.name(self.rule.lhs))?;
        if self.rule.rhs.is_empty() {
            write!(f, " <empty>")?;
        }
        for &s in &self.rule.rhs {
            write!(f, " {}", self.symbols.name(s))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::SymbolKind;

    fn sample() -> (SymbolTable, Rule) {
        let mut t = SymbolTable::new();
        let b = t.intern("B", SymbolKind::NonTerminal);
        let or = t.intern("or", SymbolKind::Terminal);
        let rule = Rule {
            id: RuleId(2),
            lhs: b,
            rhs: vec![b, or, b],
            label: None,
            assoc: Associativity::Left,
            precedence: 1,
        };
        (t, rule)
    }

    #[test]
    fn display_renders_bnf() {
        let (t, rule) = sample();
        assert_eq!(rule.display(&t).to_string(), "B ::= B or B");
    }

    #[test]
    fn empty_rule_displays_epsilon_marker() {
        let mut t = SymbolTable::new();
        let a = t.intern("A", SymbolKind::NonTerminal);
        let rule = Rule {
            id: RuleId(0),
            lhs: a,
            rhs: vec![],
            label: None,
            assoc: Associativity::None,
            precedence: 0,
        };
        assert!(rule.is_empty());
        assert_eq!(rule.display(&t).to_string(), "A ::= <empty>");
    }

    #[test]
    fn len_counts_rhs_symbols() {
        let (_, rule) = sample();
        assert_eq!(rule.len(), 3);
        assert!(!rule.is_empty());
    }

    #[test]
    fn rule_id_round_trips() {
        assert_eq!(RuleId::from_index(5).index(), 5);
        assert_eq!(format!("{:?}", RuleId(5)), "rule#5");
    }
}
