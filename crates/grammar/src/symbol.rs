//! Interned grammar symbols.
//!
//! Every terminal and non-terminal of a grammar is interned in a
//! [`SymbolTable`] and referred to by a compact [`SymbolId`]. All other
//! crates (item sets, parse tables, parsers, scanners) operate on
//! [`SymbolId`]s only, which keeps comparisons and hashing cheap and keeps
//! the representation stable while the grammar is being modified.

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// A compact identifier for an interned grammar symbol.
///
/// `SymbolId`s are only meaningful relative to the [`SymbolTable`] (and
/// hence the [`crate::Grammar`]) that produced them.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SymbolId(pub(crate) u32);

impl SymbolId {
    /// Returns the raw index of this symbol inside its table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a `SymbolId` from a raw index.
    ///
    /// This is intended for table-driven code (dense ACTION/GOTO rows) that
    /// needs to map array columns back to symbols; passing an index that was
    /// not obtained from [`SymbolId::index`] on the same table produces an
    /// id that may not resolve.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        SymbolId(index as u32)
    }
}

impl fmt::Debug for SymbolId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym#{}", self.0)
    }
}

/// Whether a symbol is a terminal (supplied by the scanner) or a
/// non-terminal (defined by grammar rules).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum SymbolKind {
    /// A token produced by the lexical scanner (or a literal).
    Terminal,
    /// A symbol defined by one or more grammar rules.
    NonTerminal,
}

impl SymbolKind {
    /// Returns `true` for [`SymbolKind::Terminal`].
    pub fn is_terminal(self) -> bool {
        matches!(self, SymbolKind::Terminal)
    }

    /// Returns `true` for [`SymbolKind::NonTerminal`].
    pub fn is_nonterminal(self) -> bool {
        matches!(self, SymbolKind::NonTerminal)
    }
}

/// An interned symbol: its name plus its kind.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct Symbol {
    /// The textual name of the symbol (e.g. `"B"` or `"true"`).
    pub name: String,
    /// Terminal or non-terminal.
    pub kind: SymbolKind,
}

/// An interning table mapping symbol names to [`SymbolId`]s.
///
/// The table never forgets a symbol: symbols of deleted rules keep their
/// ids, which is what allows the incremental parser generator to compare
/// item-set kernels across grammar modifications.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct SymbolTable {
    symbols: Vec<Symbol>,
    by_name: HashMap<String, SymbolId>,
}

impl SymbolTable {
    /// Creates an empty symbol table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name` with the given `kind`, returning its id.
    ///
    /// If `name` is already interned its existing id is returned. Interning
    /// the same name with a *different* kind is a programming error and
    /// panics: a grammar in which a name is both a terminal and a
    /// non-terminal is not meaningful.
    pub fn intern(&mut self, name: &str, kind: SymbolKind) -> SymbolId {
        if let Some(&id) = self.by_name.get(name) {
            let existing = &self.symbols[id.index()];
            assert_eq!(
                existing.kind, kind,
                "symbol `{name}` interned both as {:?} and {:?}",
                existing.kind, kind
            );
            return id;
        }
        let id = SymbolId(self.symbols.len() as u32);
        self.symbols.push(Symbol {
            name: name.to_owned(),
            kind,
        });
        self.by_name.insert(name.to_owned(), id);
        id
    }

    /// Looks up a symbol by name without interning it.
    pub fn lookup(&self, name: &str) -> Option<SymbolId> {
        self.by_name.get(name).copied()
    }

    /// Returns the symbol for `id`.
    ///
    /// # Panics
    /// Panics if `id` does not belong to this table.
    pub fn symbol(&self, id: SymbolId) -> &Symbol {
        &self.symbols[id.index()]
    }

    /// Returns the name of `id`.
    pub fn name(&self, id: SymbolId) -> &str {
        &self.symbols[id.index()].name
    }

    /// Returns the kind of `id`.
    pub fn kind(&self, id: SymbolId) -> SymbolKind {
        self.symbols[id.index()].kind
    }

    /// Returns `true` if `id` names a terminal.
    pub fn is_terminal(&self, id: SymbolId) -> bool {
        self.kind(id).is_terminal()
    }

    /// Returns `true` if `id` names a non-terminal.
    pub fn is_nonterminal(&self, id: SymbolId) -> bool {
        self.kind(id).is_nonterminal()
    }

    /// Number of interned symbols.
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// Returns `true` if no symbol has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// Iterates over `(id, symbol)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (SymbolId, &Symbol)> {
        self.symbols
            .iter()
            .enumerate()
            .map(|(i, s)| (SymbolId(i as u32), s))
    }

    /// Iterates over all terminal ids.
    pub fn terminals(&self) -> impl Iterator<Item = SymbolId> + '_ {
        self.iter()
            .filter(|(_, s)| s.kind.is_terminal())
            .map(|(id, _)| id)
    }

    /// Iterates over all non-terminal ids.
    pub fn nonterminals(&self) -> impl Iterator<Item = SymbolId> + '_ {
        self.iter()
            .filter(|(_, s)| s.kind.is_nonterminal())
            .map(|(id, _)| id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_returns_same_id_for_same_name() {
        let mut t = SymbolTable::new();
        let a = t.intern("a", SymbolKind::Terminal);
        let b = t.intern("b", SymbolKind::Terminal);
        let a2 = t.intern("a", SymbolKind::Terminal);
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn lookup_finds_interned_symbols_only() {
        let mut t = SymbolTable::new();
        let a = t.intern("A", SymbolKind::NonTerminal);
        assert_eq!(t.lookup("A"), Some(a));
        assert_eq!(t.lookup("B"), None);
    }

    #[test]
    #[should_panic(expected = "interned both")]
    fn interning_with_conflicting_kind_panics() {
        let mut t = SymbolTable::new();
        t.intern("x", SymbolKind::Terminal);
        t.intern("x", SymbolKind::NonTerminal);
    }

    #[test]
    fn kind_queries() {
        let mut t = SymbolTable::new();
        let a = t.intern("A", SymbolKind::NonTerminal);
        let x = t.intern("x", SymbolKind::Terminal);
        assert!(t.is_nonterminal(a));
        assert!(t.is_terminal(x));
        assert!(!t.is_terminal(a));
        assert_eq!(t.terminals().collect::<Vec<_>>(), vec![x]);
        assert_eq!(t.nonterminals().collect::<Vec<_>>(), vec![a]);
    }

    #[test]
    fn from_index_round_trips() {
        let mut t = SymbolTable::new();
        let a = t.intern("A", SymbolKind::NonTerminal);
        assert_eq!(SymbolId::from_index(a.index()), a);
    }

    #[test]
    fn debug_format_is_compact() {
        assert_eq!(format!("{:?}", SymbolId(7)), "sym#7");
    }
}
