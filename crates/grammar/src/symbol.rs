//! Interned grammar symbols.
//!
//! Every terminal and non-terminal of a grammar is interned in a
//! [`SymbolTable`] and referred to by a compact [`SymbolId`]. All other
//! crates (item sets, parse tables, parsers, scanners) operate on
//! [`SymbolId`]s only, which keeps comparisons and hashing cheap and keeps
//! the representation stable while the grammar is being modified.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

/// A compact identifier for an interned grammar symbol.
///
/// `SymbolId`s are only meaningful relative to the [`SymbolTable`] (and
/// hence the [`crate::Grammar`]) that produced them.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SymbolId(pub(crate) u32);

impl SymbolId {
    /// Returns the raw index of this symbol inside its table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a `SymbolId` from a raw index.
    ///
    /// This is intended for table-driven code (dense ACTION/GOTO rows) that
    /// needs to map array columns back to symbols; passing an index that was
    /// not obtained from [`SymbolId::index`] on the same table produces an
    /// id that may not resolve.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        SymbolId(index as u32)
    }
}

impl fmt::Debug for SymbolId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym#{}", self.0)
    }
}

/// Whether a symbol is a terminal (supplied by the scanner) or a
/// non-terminal (defined by grammar rules).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum SymbolKind {
    /// A token produced by the lexical scanner (or a literal).
    Terminal,
    /// A symbol defined by one or more grammar rules.
    NonTerminal,
}

impl SymbolKind {
    /// Returns `true` for [`SymbolKind::Terminal`].
    pub fn is_terminal(self) -> bool {
        matches!(self, SymbolKind::Terminal)
    }

    /// Returns `true` for [`SymbolKind::NonTerminal`].
    pub fn is_nonterminal(self) -> bool {
        matches!(self, SymbolKind::NonTerminal)
    }
}

/// An interned symbol: its name plus its kind.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct Symbol {
    /// The textual name of the symbol (e.g. `"B"` or `"true"`).
    pub name: String,
    /// Terminal or non-terminal.
    pub kind: SymbolKind,
}

/// An interning table mapping symbol names to [`SymbolId`]s.
///
/// The table never forgets a symbol: symbols of deleted rules keep their
/// ids, which is what allows the incremental parser generator to compare
/// item-set kernels across grammar modifications.
///
/// The storage lives behind one `Arc`, so cloning a table (and hence
/// forking a grammar into a new epoch) is a pointer bump, however many
/// symbols are interned. Interning a *new* symbol copies the storage on
/// write when it is shared with another fork; edits that reuse existing
/// symbols never touch it.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct SymbolTable {
    inner: Arc<SymbolTableInner>,
}

#[derive(Clone, Debug, Default)]
struct SymbolTableInner {
    symbols: Vec<Symbol>,
    by_name: HashMap<String, SymbolId>,
}

impl SymbolTable {
    /// Creates an empty symbol table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name` with the given `kind`, returning its id.
    ///
    /// If `name` is already interned its existing id is returned. Interning
    /// the same name with a *different* kind is a programming error and
    /// panics: a grammar in which a name is both a terminal and a
    /// non-terminal is not meaningful.
    pub fn intern(&mut self, name: &str, kind: SymbolKind) -> SymbolId {
        if let Some(&id) = self.inner.by_name.get(name) {
            let existing = &self.inner.symbols[id.index()];
            assert_eq!(
                existing.kind, kind,
                "symbol `{name}` interned both as {:?} and {:?}",
                existing.kind, kind
            );
            return id;
        }
        let inner = Arc::make_mut(&mut self.inner);
        let id = SymbolId(inner.symbols.len() as u32);
        inner.symbols.push(Symbol {
            name: name.to_owned(),
            kind,
        });
        inner.by_name.insert(name.to_owned(), id);
        id
    }

    /// Looks up a symbol by name without interning it.
    pub fn lookup(&self, name: &str) -> Option<SymbolId> {
        self.inner.by_name.get(name).copied()
    }

    /// Forces this clone to own its storage (copying it if shared). Used
    /// by benchmarks to reproduce the cost of a structurally *unshared*
    /// (deep) fork for comparison.
    pub fn unshare(&mut self) {
        self.inner = Arc::new((*self.inner).clone());
    }

    /// `true` when this table shares its storage with `other` (both clones
    /// point at the same `Arc`).
    pub fn shares_storage_with(&self, other: &SymbolTable) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Returns the symbol for `id`.
    ///
    /// # Panics
    /// Panics if `id` does not belong to this table.
    pub fn symbol(&self, id: SymbolId) -> &Symbol {
        &self.inner.symbols[id.index()]
    }

    /// Returns the name of `id`.
    pub fn name(&self, id: SymbolId) -> &str {
        &self.inner.symbols[id.index()].name
    }

    /// Returns the kind of `id`.
    pub fn kind(&self, id: SymbolId) -> SymbolKind {
        self.inner.symbols[id.index()].kind
    }

    /// Returns `true` if `id` names a terminal.
    pub fn is_terminal(&self, id: SymbolId) -> bool {
        self.kind(id).is_terminal()
    }

    /// Returns `true` if `id` names a non-terminal.
    pub fn is_nonterminal(&self, id: SymbolId) -> bool {
        self.kind(id).is_nonterminal()
    }

    /// Number of interned symbols.
    pub fn len(&self) -> usize {
        self.inner.symbols.len()
    }

    /// Returns `true` if no symbol has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.inner.symbols.is_empty()
    }

    /// Iterates over `(id, symbol)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (SymbolId, &Symbol)> {
        self.inner
            .symbols
            .iter()
            .enumerate()
            .map(|(i, s)| (SymbolId(i as u32), s))
    }

    /// Iterates over all terminal ids.
    pub fn terminals(&self) -> impl Iterator<Item = SymbolId> + '_ {
        self.iter()
            .filter(|(_, s)| s.kind.is_terminal())
            .map(|(id, _)| id)
    }

    /// Iterates over all non-terminal ids.
    pub fn nonterminals(&self) -> impl Iterator<Item = SymbolId> + '_ {
        self.iter()
            .filter(|(_, s)| s.kind.is_nonterminal())
            .map(|(id, _)| id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_returns_same_id_for_same_name() {
        let mut t = SymbolTable::new();
        let a = t.intern("a", SymbolKind::Terminal);
        let b = t.intern("b", SymbolKind::Terminal);
        let a2 = t.intern("a", SymbolKind::Terminal);
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn lookup_finds_interned_symbols_only() {
        let mut t = SymbolTable::new();
        let a = t.intern("A", SymbolKind::NonTerminal);
        assert_eq!(t.lookup("A"), Some(a));
        assert_eq!(t.lookup("B"), None);
    }

    #[test]
    #[should_panic(expected = "interned both")]
    fn interning_with_conflicting_kind_panics() {
        let mut t = SymbolTable::new();
        t.intern("x", SymbolKind::Terminal);
        t.intern("x", SymbolKind::NonTerminal);
    }

    #[test]
    fn kind_queries() {
        let mut t = SymbolTable::new();
        let a = t.intern("A", SymbolKind::NonTerminal);
        let x = t.intern("x", SymbolKind::Terminal);
        assert!(t.is_nonterminal(a));
        assert!(t.is_terminal(x));
        assert!(!t.is_terminal(a));
        assert_eq!(t.terminals().collect::<Vec<_>>(), vec![x]);
        assert_eq!(t.nonterminals().collect::<Vec<_>>(), vec![a]);
    }

    #[test]
    fn from_index_round_trips() {
        let mut t = SymbolTable::new();
        let a = t.intern("A", SymbolKind::NonTerminal);
        assert_eq!(SymbolId::from_index(a.index()), a);
    }

    #[test]
    fn debug_format_is_compact() {
        assert_eq!(format!("{:?}", SymbolId(7)), "sym#7");
    }
}
