//! Static grammar analysis: nullability, FIRST/FOLLOW sets, reachability
//! and productivity.
//!
//! The lazy LR(0) generator itself needs none of this (that is precisely
//! why the paper chose LR(0)), but the baselines do: SLR(1)/LALR(1) table
//! construction needs FOLLOW/FIRST, the LL(1) baseline needs FIRST/FOLLOW,
//! and Earley benefits from nullability pre-computation. Useless-symbol
//! detection is also used to lint grammars in the interactive session.

use std::collections::{BTreeSet, HashMap, HashSet};

use crate::grammar::Grammar;
use crate::rule::RuleId;
use crate::symbol::SymbolId;

/// The result of analysing a snapshot of a [`Grammar`].
///
/// The analysis is *not* incremental: it is recomputed from the current set
/// of active rules when requested. It records the grammar version it was
/// computed for so callers can detect staleness.
#[derive(Clone, Debug)]
pub struct GrammarAnalysis {
    version: u64,
    nullable: HashSet<SymbolId>,
    first: HashMap<SymbolId, BTreeSet<SymbolId>>,
    follow: HashMap<SymbolId, BTreeSet<SymbolId>>,
    reachable: HashSet<SymbolId>,
    productive: HashSet<SymbolId>,
}

impl GrammarAnalysis {
    /// Computes nullability, FIRST, FOLLOW, reachability and productivity
    /// for the active rules of `grammar`.
    pub fn compute(grammar: &Grammar) -> Self {
        let nullable = compute_nullable(grammar);
        let first = compute_first(grammar, &nullable);
        let follow = compute_follow(grammar, &nullable, &first);
        let reachable = compute_reachable(grammar);
        let productive = compute_productive(grammar);
        GrammarAnalysis {
            version: grammar.version(),
            nullable,
            first,
            follow,
            reachable,
            productive,
        }
    }

    /// The grammar version this analysis was computed for.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Is the symbol nullable (derives the empty string)? Terminals never
    /// are.
    pub fn is_nullable(&self, s: SymbolId) -> bool {
        self.nullable.contains(&s)
    }

    /// Can the whole sequence derive the empty string?
    pub fn sequence_nullable(&self, seq: &[SymbolId]) -> bool {
        seq.iter().all(|s| self.is_nullable(*s))
    }

    /// FIRST set of a single symbol. For a terminal this is the singleton
    /// containing the terminal itself.
    pub fn first(&self, s: SymbolId) -> BTreeSet<SymbolId> {
        self.first.get(&s).cloned().unwrap_or_default()
    }

    /// FIRST set of a sequence of symbols (does not include the empty
    /// string; use [`GrammarAnalysis::sequence_nullable`] for that).
    pub fn first_of_sequence(&self, seq: &[SymbolId]) -> BTreeSet<SymbolId> {
        let mut out = BTreeSet::new();
        for &s in seq {
            out.extend(self.first(s).iter().copied());
            if !self.is_nullable(s) {
                break;
            }
        }
        out
    }

    /// FOLLOW set of a non-terminal. The end-marker `$` is in the FOLLOW
    /// set of the start symbol.
    pub fn follow(&self, s: SymbolId) -> BTreeSet<SymbolId> {
        self.follow.get(&s).cloned().unwrap_or_default()
    }

    /// Is the symbol reachable from the start symbol?
    pub fn is_reachable(&self, s: SymbolId) -> bool {
        self.reachable.contains(&s)
    }

    /// Is the symbol productive (derives at least one terminal string)?
    /// Terminals are productive by definition.
    pub fn is_productive(&self, s: SymbolId) -> bool {
        self.productive.contains(&s)
    }

    /// Rules that can never participate in a derivation of a sentence:
    /// their left-hand side is unreachable or some right-hand-side symbol is
    /// unproductive.
    pub fn useless_rules(&self, grammar: &Grammar) -> Vec<RuleId> {
        grammar
            .rules()
            .filter(|r| {
                !self.is_reachable(r.lhs) || r.rhs.iter().any(|s| !self.is_productive(*s))
            })
            .map(|r| r.id)
            .collect()
    }
}

fn compute_nullable(grammar: &Grammar) -> HashSet<SymbolId> {
    let mut nullable = HashSet::new();
    let mut changed = true;
    while changed {
        changed = false;
        for rule in grammar.rules() {
            if nullable.contains(&rule.lhs) {
                continue;
            }
            if rule.rhs.iter().all(|s| nullable.contains(s)) {
                nullable.insert(rule.lhs);
                changed = true;
            }
        }
    }
    nullable
}

fn compute_first(
    grammar: &Grammar,
    nullable: &HashSet<SymbolId>,
) -> HashMap<SymbolId, BTreeSet<SymbolId>> {
    let mut first: HashMap<SymbolId, BTreeSet<SymbolId>> = HashMap::new();
    for (id, sym) in grammar.symbols().iter() {
        if sym.kind.is_terminal() {
            first.entry(id).or_default().insert(id);
        } else {
            first.entry(id).or_default();
        }
    }
    let mut changed = true;
    while changed {
        changed = false;
        for rule in grammar.rules() {
            let mut addition = BTreeSet::new();
            for &s in &rule.rhs {
                addition.extend(first.get(&s).into_iter().flatten().copied());
                if !nullable.contains(&s) {
                    break;
                }
            }
            let entry = first.entry(rule.lhs).or_default();
            let before = entry.len();
            entry.extend(addition);
            if entry.len() != before {
                changed = true;
            }
        }
    }
    first
}

fn compute_follow(
    grammar: &Grammar,
    nullable: &HashSet<SymbolId>,
    first: &HashMap<SymbolId, BTreeSet<SymbolId>>,
) -> HashMap<SymbolId, BTreeSet<SymbolId>> {
    let mut follow: HashMap<SymbolId, BTreeSet<SymbolId>> = HashMap::new();
    follow
        .entry(grammar.start_symbol())
        .or_default()
        .insert(grammar.eof_symbol());
    let mut changed = true;
    while changed {
        changed = false;
        for rule in grammar.rules() {
            // Walk the rhs from left to right, tracking what can follow each
            // non-terminal occurrence.
            for (i, &s) in rule.rhs.iter().enumerate() {
                if !grammar.is_nonterminal(s) {
                    continue;
                }
                let rest = &rule.rhs[i + 1..];
                let mut addition: BTreeSet<SymbolId> = BTreeSet::new();
                let mut rest_nullable = true;
                for &t in rest {
                    addition.extend(first.get(&t).into_iter().flatten().copied());
                    if !nullable.contains(&t) {
                        rest_nullable = false;
                        break;
                    }
                }
                if rest_nullable {
                    addition.extend(follow.get(&rule.lhs).into_iter().flatten().copied());
                }
                let entry = follow.entry(s).or_default();
                let before = entry.len();
                entry.extend(addition);
                if entry.len() != before {
                    changed = true;
                }
            }
        }
    }
    follow
}

fn compute_reachable(grammar: &Grammar) -> HashSet<SymbolId> {
    let mut reachable = HashSet::new();
    let mut stack = vec![grammar.start_symbol()];
    reachable.insert(grammar.start_symbol());
    while let Some(s) = stack.pop() {
        for rule in grammar.rules_for(s) {
            for &t in &rule.rhs {
                if reachable.insert(t) && grammar.is_nonterminal(t) {
                    stack.push(t);
                }
            }
        }
    }
    reachable
}

fn compute_productive(grammar: &Grammar) -> HashSet<SymbolId> {
    let mut productive: HashSet<SymbolId> =
        grammar.symbols().terminals().collect();
    let mut changed = true;
    while changed {
        changed = false;
        for rule in grammar.rules() {
            if productive.contains(&rule.lhs) {
                continue;
            }
            if rule.rhs.iter().all(|s| productive.contains(s)) {
                productive.insert(rule.lhs);
                changed = true;
            }
        }
    }
    productive
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;

    #[test]
    fn booleans_first_sets() {
        let g = fixtures::booleans();
        let a = GrammarAnalysis::compute(&g);
        let b = g.symbol("B").unwrap();
        let t = g.symbol("true").unwrap();
        let f = g.symbol("false").unwrap();
        let first_b = a.first(b);
        assert!(first_b.contains(&t));
        assert!(first_b.contains(&f));
        assert_eq!(first_b.len(), 2);
        assert_eq!(a.first(t), [t].into_iter().collect());
    }

    #[test]
    fn booleans_follow_sets() {
        let g = fixtures::booleans();
        let a = GrammarAnalysis::compute(&g);
        let b = g.symbol("B").unwrap();
        let follow_b = a.follow(b);
        assert!(follow_b.contains(&g.symbol("or").unwrap()));
        assert!(follow_b.contains(&g.symbol("and").unwrap()));
        assert!(follow_b.contains(&g.eof_symbol()));
    }

    #[test]
    fn nothing_nullable_in_booleans() {
        let g = fixtures::booleans();
        let a = GrammarAnalysis::compute(&g);
        let b = g.symbol("B").unwrap();
        assert!(!a.is_nullable(b));
        assert!(!a.is_nullable(g.symbol("true").unwrap()));
    }

    #[test]
    fn nullable_and_first_with_epsilon_rules() {
        // S ::= A b ; A ::= <empty> | a
        let mut g = Grammar::new();
        let s = g.nonterminal("S");
        let a = g.nonterminal("A");
        let ta = g.terminal("a");
        let tb = g.terminal("b");
        g.add_rule(s, vec![a, tb]);
        g.add_rule(a, vec![]);
        g.add_rule(a, vec![ta]);
        g.add_start_rule(s);
        let an = GrammarAnalysis::compute(&g);
        assert!(an.is_nullable(a));
        assert!(!an.is_nullable(s));
        let first_s = an.first(s);
        assert!(first_s.contains(&ta));
        assert!(first_s.contains(&tb));
        assert!(an.follow(a).contains(&tb));
        assert!(an.sequence_nullable(&[a]));
        assert!(!an.sequence_nullable(&[a, s]));
    }

    #[test]
    fn first_of_sequence_respects_nullability() {
        let mut g = Grammar::new();
        let s = g.nonterminal("S");
        let a = g.nonterminal("A");
        let ta = g.terminal("a");
        let tb = g.terminal("b");
        g.add_rule(a, vec![]);
        g.add_rule(a, vec![ta]);
        g.add_rule(s, vec![a, tb]);
        g.add_start_rule(s);
        let an = GrammarAnalysis::compute(&g);
        let seq_first = an.first_of_sequence(&[a, tb]);
        assert!(seq_first.contains(&ta));
        assert!(seq_first.contains(&tb));
        let only_a = an.first_of_sequence(&[ta]);
        assert_eq!(only_a, [ta].into_iter().collect());
    }

    #[test]
    fn unreachable_and_unproductive_rules_are_useless() {
        let mut g = Grammar::new();
        let s = g.nonterminal("S");
        let dead = g.nonterminal("DEAD");
        let looping = g.nonterminal("LOOP");
        let ta = g.terminal("a");
        g.add_rule(s, vec![ta]);
        g.add_rule(dead, vec![ta]); // unreachable
        g.add_rule(s, vec![looping]); // unproductive rhs
        g.add_rule(looping, vec![looping]); // never terminates
        g.add_start_rule(s);
        let an = GrammarAnalysis::compute(&g);
        assert!(!an.is_reachable(dead));
        assert!(an.is_productive(dead));
        assert!(!an.is_productive(looping));
        let useless = an.useless_rules(&g);
        assert_eq!(useless.len(), 3);
    }

    #[test]
    fn analysis_records_grammar_version() {
        let mut g = fixtures::booleans();
        let a = GrammarAnalysis::compute(&g);
        assert_eq!(a.version(), g.version());
        let b = g.symbol("B").unwrap();
        let unk = g.terminal("unknown");
        g.add_rule(b, vec![unk]);
        assert_ne!(a.version(), g.version());
    }
}
