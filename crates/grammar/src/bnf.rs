//! A small textual BNF notation for writing grammars in tests, examples and
//! fixtures.
//!
//! The notation is line based:
//!
//! ```text
//! // comment
//! B ::= "true"
//! B ::= "false"
//! B ::= B "or" B
//! B ::= B "and" B
//! START ::= B
//! A ::=            // epsilon rule: empty right-hand side
//! ```
//!
//! * the left-hand side is a bare identifier and becomes a non-terminal;
//! * quoted strings are terminals;
//! * bare identifiers on the right-hand side are non-terminals if they occur
//!   as a left-hand side anywhere in the text, terminals otherwise;
//! * `|` separates alternatives within one line;
//! * `//` and `--` start a comment that runs to the end of the line.

use std::fmt;

use crate::grammar::Grammar;

/// Error produced while parsing the textual BNF notation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BnfError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Human-readable description of the problem.
    pub message: String,
}

impl fmt::Display for BnfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for BnfError {}

/// Parses the textual BNF notation into a [`Grammar`].
///
/// ```
/// let g = ipg_grammar::parse_bnf(r#"
///     B ::= "true" | "false" | B "or" B | B "and" B
///     START ::= B
/// "#).unwrap();
/// assert_eq!(g.num_active_rules(), 5);
/// ```
pub fn parse_bnf(text: &str) -> Result<Grammar, BnfError> {
    let lines: Vec<(usize, String)> = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, strip_comment(l).trim().to_owned()))
        .filter(|(_, l)| !l.is_empty())
        .collect();

    // First pass: collect left-hand sides so bare identifiers can be
    // classified as terminals or non-terminals.
    let mut lhs_names = Vec::new();
    for (lineno, line) in &lines {
        let (lhs, _) = split_rule(line, *lineno)?;
        lhs_names.push(lhs.to_owned());
    }

    let mut grammar = Grammar::new();
    for (lineno, line) in &lines {
        let (lhs, rhs_text) = split_rule(line, *lineno)?;
        let lhs_id = grammar.nonterminal(lhs);
        for alternative in split_alternatives(rhs_text) {
            let mut rhs = Vec::new();
            for token in tokenize(&alternative, *lineno)? {
                let id = match token {
                    BnfToken::Literal(name) => grammar.terminal(&name),
                    BnfToken::Ident(name) => {
                        if lhs_names.iter().any(|l| l == &name) {
                            grammar.nonterminal(&name)
                        } else {
                            grammar.terminal(&name)
                        }
                    }
                };
                rhs.push(id);
            }
            grammar.add_rule(lhs_id, rhs);
        }
    }
    Ok(grammar)
}

fn strip_comment(line: &str) -> &str {
    let cut = line
        .find("//")
        .into_iter()
        .chain(line.find("--"))
        .min()
        .unwrap_or(line.len());
    &line[..cut]
}

fn split_rule(line: &str, lineno: usize) -> Result<(&str, &str), BnfError> {
    let Some((lhs, rhs)) = line.split_once("::=") else {
        return Err(BnfError {
            line: lineno,
            message: format!("expected `LHS ::= RHS`, got `{line}`"),
        });
    };
    let lhs = lhs.trim();
    if lhs.is_empty() || !lhs.chars().all(|c| c.is_alphanumeric() || c == '_' || c == '-') {
        return Err(BnfError {
            line: lineno,
            message: format!("invalid left-hand side `{lhs}`"),
        });
    }
    Ok((lhs, rhs))
}

fn split_alternatives(rhs: &str) -> Vec<String> {
    // Split on `|` that is not inside a quoted literal.
    let mut alternatives = Vec::new();
    let mut current = String::new();
    let mut in_quote = false;
    for c in rhs.chars() {
        match c {
            '"' => {
                in_quote = !in_quote;
                current.push(c);
            }
            '|' if !in_quote => {
                alternatives.push(current.trim().to_owned());
                current.clear();
            }
            _ => current.push(c),
        }
    }
    alternatives.push(current.trim().to_owned());
    alternatives
}

enum BnfToken {
    Literal(String),
    Ident(String),
}

fn tokenize(alternative: &str, lineno: usize) -> Result<Vec<BnfToken>, BnfError> {
    let mut tokens = Vec::new();
    let mut chars = alternative.chars().peekable();
    while let Some(&c) = chars.peek() {
        if c.is_whitespace() {
            chars.next();
        } else if c == '"' {
            chars.next();
            let mut lit = String::new();
            loop {
                match chars.next() {
                    Some('"') => break,
                    Some(ch) => lit.push(ch),
                    None => {
                        return Err(BnfError {
                            line: lineno,
                            message: "unterminated string literal".to_owned(),
                        })
                    }
                }
            }
            tokens.push(BnfToken::Literal(lit));
        } else if c.is_alphanumeric() || c == '_' || c == '-' || c == '\'' {
            let mut ident = String::new();
            while let Some(&ch) = chars.peek() {
                if ch.is_alphanumeric() || ch == '_' || ch == '-' || ch == '\'' {
                    ident.push(ch);
                    chars.next();
                } else {
                    break;
                }
            }
            tokens.push(BnfToken::Ident(ident));
        } else {
            return Err(BnfError {
                line: lineno,
                message: format!("unexpected character `{c}`"),
            });
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_boolean_grammar() {
        let g = parse_bnf(
            r#"
            // the grammar of the Booleans from Fig. 4.1(a)
            B ::= "true"
            B ::= "false"
            B ::= B "or" B
            B ::= B "and" B
            START ::= B
            "#,
        )
        .unwrap();
        assert_eq!(g.num_active_rules(), 5);
        assert!(g.validate().is_ok());
        assert!(g.is_terminal(g.symbol("or").unwrap()));
        assert!(g.is_nonterminal(g.symbol("B").unwrap()));
    }

    #[test]
    fn alternatives_expand_to_separate_rules() {
        let g = parse_bnf(
            r#"
            B ::= "true" | "false" | B "or" B
            START ::= B
            "#,
        )
        .unwrap();
        assert_eq!(g.num_active_rules(), 4);
    }

    #[test]
    fn bare_idents_without_lhs_become_terminals() {
        let g = parse_bnf(
            r#"
            E ::= E plus E | id
            START ::= E
            "#,
        )
        .unwrap();
        assert!(g.is_terminal(g.symbol("plus").unwrap()));
        assert!(g.is_terminal(g.symbol("id").unwrap()));
        assert!(g.is_nonterminal(g.symbol("E").unwrap()));
    }

    #[test]
    fn empty_alternative_gives_epsilon_rule() {
        let g = parse_bnf(
            r#"
            A ::=
            S ::= A b
            START ::= S
            "#,
        )
        .unwrap();
        let a = g.symbol("A").unwrap();
        assert!(g.rules_for(a).any(|r| r.rhs.is_empty()));
    }

    #[test]
    fn comments_are_ignored() {
        let g = parse_bnf(
            r#"
            -- SDF style comment
            S ::= a  // trailing
            START ::= S
            "#,
        )
        .unwrap();
        assert_eq!(g.num_active_rules(), 2);
    }

    #[test]
    fn missing_arrow_is_an_error() {
        let err = parse_bnf("S = a").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("::="));
    }

    #[test]
    fn unterminated_literal_is_an_error() {
        let err = parse_bnf("S ::= \"abc").unwrap_err();
        assert!(err.message.contains("unterminated"));
    }

    #[test]
    fn unexpected_character_is_an_error() {
        let err = parse_bnf("S ::= a + b").unwrap_err();
        assert!(err.message.contains("unexpected character"));
        assert!(err.to_string().contains("line 1"));
    }
}
