//! Grammars used throughout the paper, plus a few extra ones exercised by
//! tests, examples and benchmarks.

use crate::bnf::parse_bnf;
use crate::grammar::Grammar;

/// The grammar of the Booleans from Fig. 4.1(a):
///
/// ```text
/// 0  B ::= true
/// 1  B ::= false
/// 2  B ::= B or B
/// 3  B ::= B and B
/// 4  START ::= B
/// ```
///
/// Note that the grammar is ambiguous (`true or true or true` has two
/// parses), which is fine for the parallel LR parser.
pub fn booleans() -> Grammar {
    parse_bnf(
        r#"
        B ::= "true"
        B ::= "false"
        B ::= B "or" B
        B ::= B "and" B
        START ::= B
        "#,
    )
    .expect("builtin grammar parses")
}

/// The contrived grammar of Fig. 6.2(a), describing the two-sentence
/// language { `a b`, `c b` } in a deliberately roundabout way:
///
/// ```text
/// START ::= E      E ::= c C     C ::= B
/// START ::= D      D ::= a A     A ::= B
/// B ::= b
/// ```
///
/// Adding `A ::= b` to it is the paper's smallest example in which the old
/// item-set graph is *not* a subgraph of the new one (Fig. 6.3).
pub fn fig62() -> Grammar {
    parse_bnf(
        r#"
        E ::= "c" C
        C ::= B
        D ::= "a" A
        A ::= B
        B ::= "b"
        START ::= E
        START ::= D
        "#,
    )
    .expect("builtin grammar parses")
}

/// A small unambiguous arithmetic expression grammar with the usual
/// precedence encoded through the non-terminal chain E / T / F.
pub fn arithmetic() -> Grammar {
    parse_bnf(
        r#"
        E ::= E "+" T | E "-" T | T
        T ::= T "*" F | T "/" F | F
        F ::= "(" E ")" | "id" | "num"
        START ::= E
        "#,
    )
    .expect("builtin grammar parses")
}

/// An ambiguous expression grammar (`E ::= E op E`) used to exercise the
/// parallel parser and parse-forest sharing.
pub fn ambiguous_expressions() -> Grammar {
    parse_bnf(
        r#"
        E ::= E "+" E | E "*" E | "(" E ")" | "id"
        START ::= E
        "#,
    )
    .expect("builtin grammar parses")
}

/// A grammar that is LL(1) as well as LR(0)-friendly; used by the
/// recursive-descent / LL(1) baselines.
pub fn statements() -> Grammar {
    parse_bnf(
        r#"
        STMT ::= "if" EXPR "then" STMT "else" STMT
        STMT ::= "while" EXPR "do" STMT
        STMT ::= "id" ":=" EXPR
        STMT ::= "begin" LIST "end"
        LIST ::= STMT TAIL
        TAIL ::= ";" STMT TAIL
        TAIL ::=
        EXPR ::= "id" | "num"
        START ::= STMT
        "#,
    )
    .expect("builtin grammar parses")
}

/// The palindrome-ish grammar `S ::= a S a | b S b | a | b | <empty>`,
/// which is not LR(k) for any k but is handled by the parallel parser and
/// by Earley. Used in the "powerful" column of the Fig. 2.1 comparison.
pub fn palindromes() -> Grammar {
    parse_bnf(
        r#"
        S ::= "a" S "a"
        S ::= "b" S "b"
        S ::= "a"
        S ::= "b"
        S ::=
        START ::= S
        "#,
    )
    .expect("builtin grammar parses")
}

/// A deeply left-recursive list grammar, pathological for recursive
/// descent / LL but trivial for LR. Used in the comparison matrix.
pub fn left_recursive_list() -> Grammar {
    parse_bnf(
        r#"
        L ::= L "," "x"
        L ::= "x"
        START ::= L
        "#,
    )
    .expect("builtin grammar parses")
}

/// A right-recursive list grammar (the LL-friendly mirror image of
/// [`left_recursive_list`]).
pub fn right_recursive_list() -> Grammar {
    parse_bnf(
        r#"
        L ::= "x" "," L
        L ::= "x"
        START ::= L
        "#,
    )
    .expect("builtin grammar parses")
}

/// The boolean grammar extended with `B ::= unknown`, i.e. the grammar of
/// Fig. 6.1 after the modification discussed in §6.
pub fn booleans_with_unknown() -> Grammar {
    let mut g = booleans();
    let b = g.symbol("B").expect("B exists");
    let unknown = g.terminal("unknown");
    g.add_rule(b, vec![unknown]);
    g
}

/// Generates a family of grammars of increasing size: `n` "statement"
/// non-terminals each with a keyword-introduced rule plus shared expression
/// syntax. Used by scaling benchmarks.
pub fn sized_grammar(n: usize) -> Grammar {
    let mut g = Grammar::new();
    let stmt = g.nonterminal("STMT");
    let expr = g.nonterminal("EXPR");
    let id = g.terminal("id");
    let num = g.terminal("num");
    let plus = g.terminal("+");
    g.add_rule(expr, vec![id]);
    g.add_rule(expr, vec![num]);
    g.add_rule(expr, vec![expr, plus, expr]);
    for i in 0..n {
        let kw = g.terminal(&format!("kw{i}"));
        let end = g.terminal(&format!("end{i}"));
        g.add_rule(stmt, vec![kw, expr, end]);
    }
    g.add_start_rule(stmt);
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::GrammarAnalysis;

    #[test]
    fn all_fixtures_validate() {
        for (name, g) in [
            ("booleans", booleans()),
            ("fig62", fig62()),
            ("arithmetic", arithmetic()),
            ("ambiguous", ambiguous_expressions()),
            ("statements", statements()),
            ("palindromes", palindromes()),
            ("left_recursive_list", left_recursive_list()),
            ("right_recursive_list", right_recursive_list()),
            ("booleans_with_unknown", booleans_with_unknown()),
            ("sized_grammar(10)", sized_grammar(10)),
        ] {
            assert!(g.validate().is_ok(), "fixture {name} should validate");
        }
    }

    #[test]
    fn booleans_matches_paper_rule_count() {
        let g = booleans();
        assert_eq!(g.num_active_rules(), 5);
    }

    #[test]
    fn fig62_language_symbols() {
        let g = fig62();
        assert_eq!(g.rules_for(g.start_symbol()).count(), 2);
        assert!(g.symbol("A").is_some());
        assert!(g.symbol("b").is_some());
    }

    #[test]
    fn sized_grammar_scales_linearly() {
        assert_eq!(sized_grammar(5).num_active_rules(), 3 + 5 + 1);
        assert_eq!(sized_grammar(50).num_active_rules(), 3 + 50 + 1);
    }

    #[test]
    fn palindromes_grammar_is_nullable() {
        let g = palindromes();
        let a = GrammarAnalysis::compute(&g);
        assert!(a.is_nullable(g.symbol("S").unwrap()));
    }

    #[test]
    fn booleans_with_unknown_has_extra_rule() {
        assert_eq!(
            booleans_with_unknown().num_active_rules(),
            booleans().num_active_rules() + 1
        );
    }
}
