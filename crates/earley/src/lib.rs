//! # ipg-earley
//!
//! Earley's general context-free parsing algorithm \[Ear70\], one of the
//! baselines the paper compares against (§2.1): it recognises the same
//! class of grammars as IPG but has *no* generation phase at all, which
//! makes it trivially flexible under grammar modification and — as the
//! paper argues — too slow for interactive parsing of longer inputs. The
//! benchmark harness uses this crate to put IPG's "flexible *and* fast"
//! claim in context.
//!
//! The implementation is a classic chart parser with the standard
//! predictor/scanner/completer operations plus Aycock & Horspool's fix for
//! nullable non-terminals (the predictor also completes when the predicted
//! non-terminal is nullable).
//!
//! ```
//! use ipg_grammar::fixtures;
//! use ipg_earley::EarleyParser;
//! use ipg_lr::tokenize_names;
//!
//! let grammar = fixtures::booleans();
//! let parser = EarleyParser::new(&grammar);
//! let tokens = tokenize_names(&grammar, "true or false").unwrap();
//! assert!(parser.recognize(&tokens));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::HashSet;

use ipg_grammar::{Grammar, GrammarAnalysis, RuleId, SymbolId};

/// A dotted rule with an origin position — Earley's "dotted rules ...
/// with the position in the input where the recognition of the rule
/// started" (§2.1).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EarleyItem {
    /// The rule being recognised.
    pub rule: RuleId,
    /// How many right-hand-side symbols have been recognised.
    pub dot: usize,
    /// Input position where recognition of this rule started.
    pub origin: usize,
}

/// Statistics of one Earley parse; the item count is the usual proxy for
/// the algorithm's cost.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EarleyStats {
    /// Total number of items over all chart sets.
    pub items: usize,
    /// Number of completer operations.
    pub completions: usize,
    /// Number of predictor operations.
    pub predictions: usize,
    /// Number of scanner operations.
    pub scans: usize,
}

/// Earley's parser. Construction performs only the cheap nullability
/// analysis; all other work happens per sentence, which is exactly the
/// trade-off the paper contrasts with table-driven parsing.
#[derive(Debug)]
pub struct EarleyParser<'g> {
    grammar: &'g Grammar,
    nullable: HashSet<SymbolId>,
}

impl<'g> EarleyParser<'g> {
    /// Creates a parser for `grammar`.
    pub fn new(grammar: &'g Grammar) -> Self {
        let analysis = GrammarAnalysis::compute(grammar);
        let nullable = grammar
            .symbols()
            .nonterminals()
            .filter(|&nt| analysis.is_nullable(nt))
            .collect();
        EarleyParser { grammar, nullable }
    }

    /// Recognises `tokens` (terminal symbols, without the end-marker).
    pub fn recognize(&self, tokens: &[SymbolId]) -> bool {
        self.recognize_with_stats(tokens).0
    }

    /// Recognises `tokens` and reports chart statistics.
    pub fn recognize_with_stats(&self, tokens: &[SymbolId]) -> (bool, EarleyStats) {
        let n = tokens.len();
        let mut stats = EarleyStats::default();
        let mut chart: Vec<Vec<EarleyItem>> = vec![Vec::new(); n + 1];
        let mut chart_index: Vec<HashSet<EarleyItem>> = vec![HashSet::new(); n + 1];

        for rule in self.grammar.rules_for(self.grammar.start_symbol()) {
            push_item(
                &mut chart,
                &mut chart_index,
                0,
                EarleyItem {
                    rule: rule.id,
                    dot: 0,
                    origin: 0,
                },
                &mut stats,
            );
        }

        for pos in 0..=n {
            let mut i = 0;
            while i < chart[pos].len() {
                let item = chart[pos][i];
                i += 1;
                let rule = self.grammar.rule(item.rule);
                match rule.rhs.get(item.dot).copied() {
                    None => {
                        // Completer: the rule is fully recognised; advance
                        // every item in the origin set that was waiting for
                        // this non-terminal.
                        stats.completions += 1;
                        let lhs = rule.lhs;
                        let origin_len = chart[item.origin].len();
                        for j in 0..origin_len {
                            let waiting = chart[item.origin][j];
                            let waiting_rule = self.grammar.rule(waiting.rule);
                            if waiting_rule.rhs.get(waiting.dot).copied() == Some(lhs) {
                                push_item(
                                    &mut chart,
                                    &mut chart_index,
                                    pos,
                                    EarleyItem {
                                        rule: waiting.rule,
                                        dot: waiting.dot + 1,
                                        origin: waiting.origin,
                                    },
                                    &mut stats,
                                );
                            }
                        }
                    }
                    Some(next) if self.grammar.is_nonterminal(next) => {
                        // Predictor.
                        stats.predictions += 1;
                        for predicted in self.grammar.rules_for(next) {
                            push_item(
                                &mut chart,
                                &mut chart_index,
                                pos,
                                EarleyItem {
                                    rule: predicted.id,
                                    dot: 0,
                                    origin: pos,
                                },
                                &mut stats,
                            );
                        }
                        // Aycock–Horspool: if the predicted non-terminal is
                        // nullable, also advance over it immediately.
                        if self.nullable.contains(&next) {
                            push_item(
                                &mut chart,
                                &mut chart_index,
                                pos,
                                EarleyItem {
                                    rule: item.rule,
                                    dot: item.dot + 1,
                                    origin: item.origin,
                                },
                                &mut stats,
                            );
                        }
                    }
                    Some(terminal) => {
                        // Scanner.
                        if pos < n && tokens[pos] == terminal {
                            stats.scans += 1;
                            push_item(
                                &mut chart,
                                &mut chart_index,
                                pos + 1,
                                EarleyItem {
                                    rule: item.rule,
                                    dot: item.dot + 1,
                                    origin: item.origin,
                                },
                                &mut stats,
                            );
                        }
                    }
                }
            }
        }

        let accepted = chart[n].iter().any(|item| {
            let rule = self.grammar.rule(item.rule);
            rule.lhs == self.grammar.start_symbol()
                && item.dot == rule.rhs.len()
                && item.origin == 0
        });
        (accepted, stats)
    }

    /// Number of chart items needed for `tokens`; a convenient cost proxy
    /// for comparisons with the table-driven parsers.
    pub fn chart_size(&self, tokens: &[SymbolId]) -> usize {
        self.recognize_with_stats(tokens).1.items
    }
}

fn push_item(
    chart: &mut [Vec<EarleyItem>],
    index: &mut [HashSet<EarleyItem>],
    pos: usize,
    item: EarleyItem,
    stats: &mut EarleyStats,
) {
    if index[pos].insert(item) {
        chart[pos].push(item);
        stats.items += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipg_grammar::fixtures;
    use ipg_lr::tokenize_names;

    #[test]
    fn accepts_and_rejects_boolean_sentences() {
        let g = fixtures::booleans();
        let p = EarleyParser::new(&g);
        for (s, expected) in [
            ("true", true),
            ("true or false and true", true),
            ("", false),
            ("true or", false),
            ("or true", false),
        ] {
            let tokens = tokenize_names(&g, s).unwrap();
            assert_eq!(p.recognize(&tokens), expected, "sentence `{s}`");
        }
    }

    #[test]
    fn handles_nullable_rules_and_palindromes() {
        let g = fixtures::palindromes();
        let p = EarleyParser::new(&g);
        for (s, expected) in [
            ("", true),
            ("a", true),
            ("a a", true),
            ("a b a", true),
            ("a b a b", false),
        ] {
            let tokens = tokenize_names(&g, s).unwrap();
            assert_eq!(p.recognize(&tokens), expected, "sentence `{s}`");
        }
    }

    #[test]
    fn handles_left_and_right_recursion() {
        let left = fixtures::left_recursive_list();
        let right = fixtures::right_recursive_list();
        for g in [&left, &right] {
            let p = EarleyParser::new(g);
            let ok = tokenize_names(g, "x , x , x , x").unwrap();
            let bad = tokenize_names(g, "x , , x").unwrap();
            assert!(p.recognize(&ok));
            assert!(!p.recognize(&bad));
        }
    }

    #[test]
    fn agrees_with_the_parallel_lr_parser() {
        use ipg_glr::GssParser;
        use ipg_lr::{Lr0Automaton, ParseTable};
        let g = fixtures::ambiguous_expressions();
        let earley = EarleyParser::new(&g);
        let table = ParseTable::lr0(&Lr0Automaton::build(&g), &g);
        let glr = GssParser::new(&g);
        for s in [
            "id",
            "id + id * id",
            "( id + id ) * id",
            "id + + id",
            "( id",
            "id )",
        ] {
            let tokens = tokenize_names(&g, s).unwrap();
            assert_eq!(
                earley.recognize(&tokens),
                glr.recognize(&table, &tokens),
                "sentence `{s}`"
            );
        }
    }

    #[test]
    fn stats_grow_with_input_length() {
        let g = fixtures::booleans();
        let p = EarleyParser::new(&g);
        let short = p.chart_size(&tokenize_names(&g, "true").unwrap());
        let long = p.chart_size(&tokenize_names(&g, "true or true and false or true").unwrap());
        assert!(long > short);
        let (ok, stats) = p.recognize_with_stats(&tokenize_names(&g, "true or true").unwrap());
        assert!(ok);
        assert!(stats.scans >= 3);
        assert!(stats.completions > 0);
        assert!(stats.predictions > 0);
    }

    #[test]
    fn grammar_modification_needs_no_regeneration() {
        // The whole point of the comparison: with Earley a grammar change
        // has zero update cost — a new parser object is all that is needed,
        // and no tables are thrown away (because there are none).
        let mut g = fixtures::booleans();
        let p = EarleyParser::new(&g);
        let tokens = tokenize_names(&g, "true or false").unwrap();
        assert!(p.recognize(&tokens));
        drop(p);
        let b = g.symbol("B").unwrap();
        let unknown = g.terminal("unknown");
        g.add_rule(b, vec![unknown]);
        let p = EarleyParser::new(&g);
        assert!(p.recognize(&tokenize_names(&g, "unknown and true").unwrap()));
    }
}
