//! Deterministic integration tests that pin down the concrete scenarios
//! and figures of the paper (beyond the per-crate unit tests).

use ipg::{GcPolicy, IpgSession, ItemSetGraph, ItemSetKind, LazyTables};
use ipg_glr::GssParser;
use ipg_grammar::fixtures;
use ipg_lr::{tokenize_names, Lr0Automaton, ParseTable};

/// Fig. 4.1: the Booleans grammar has 8 item sets; its LR(0) table has
/// shift/reduce conflicts (the grammar is ambiguous) but parses fine with
/// the parallel parser.
#[test]
fn fig4_boolean_table() {
    let grammar = fixtures::booleans();
    let automaton = Lr0Automaton::build(&grammar);
    assert_eq!(automaton.num_states(), 8);
    let table = ParseTable::lr0(&automaton, &grammar);
    assert!(!table.is_deterministic());
    let parser = GssParser::new(&grammar);
    let tokens = tokenize_names(&grammar, "true or false").unwrap();
    let result = parser.parse(&table, &tokens);
    assert!(result.accepted);
    assert_eq!(result.forest.tree_count(10), 1);
}

/// Fig. 5.1/5.2: lazy generation expands the start state on the first
/// ACTION call and reaches only part of the table for `true and true`; the
/// remaining states appear when `or`/`false` are used.
#[test]
fn fig5_lazy_growth() {
    let session = IpgSession::new(fixtures::booleans());
    assert_eq!(session.graph_size().total, 1);
    assert_eq!(session.graph_size().complete, 0);

    session.parse_sentence("true and true").unwrap();
    let after_and = session.graph_size();
    assert!(after_and.complete >= 4 && after_and.complete < 8);

    // Sentences over the same symbols do not grow the graph further.
    let expansions = session.stats().expansions;
    session.parse_sentence("true and true and true").unwrap();
    assert_eq!(session.stats().expansions, expansions);

    // `or` and `false` force the remaining expansions.
    session.parse_sentence("false or true").unwrap();
    assert!(session.graph_size().complete > after_and.complete);
    assert!((session.coverage() - 1.0).abs() < 1e-9 || session.coverage() < 1.0);
}

/// Fig. 6.1/6.4/6.5: adding `B ::= unknown` invalidates exactly the item
/// sets with a transition on `B` (three of them), and re-expansion restores
/// the old connections while adding the new `unknown` state.
#[test]
fn fig6_boolean_modification() {
    let mut grammar = fixtures::booleans();
    let mut graph = ItemSetGraph::with_policy(&grammar, GcPolicy::Retain);
    graph.expand_all(&grammar);
    assert_eq!(graph.num_live(), 8);

    let b = grammar.symbol("B").unwrap();
    let unknown = grammar.terminal("unknown");
    graph.add_rule(&mut grammar, b, vec![unknown]);

    let invalidated: Vec<_> = graph
        .live_nodes()
        .filter(|n| n.kind != ItemSetKind::Complete)
        .collect();
    assert_eq!(invalidated.len(), 3, "item sets 0, 4 and 5 in the paper's numbering");
    assert!(invalidated.iter().all(|n| n.transitions.contains_key(&b)));

    // Parsing a sentence with the new rule re-expands by need and succeeds;
    // the sentence `unknown` exercises the new item set of Fig. 6.5.
    let parser = GssParser::new(&grammar);
    let tokens = tokenize_names(&grammar, "unknown and true").unwrap();
    assert!(parser.recognize(&LazyTables::new(&grammar, &graph).unwrap(), &tokens));
    assert!(graph
        .live_nodes()
        .any(|n| n.kind == ItemSetKind::Complete && n.transitions.contains_key(&unknown)));
}

/// Fig. 6.2/6.3: the old graph is not a subgraph of the new one — after
/// adding `A ::= b`, the `b`-successor of the invalidated state holds both
/// completed rules, while the original `B ::= b .` state survives.
#[test]
fn fig6_counterexample_grammar() {
    let mut grammar = fixtures::fig62();
    let mut graph = ItemSetGraph::new(&grammar);
    graph.expand_all(&grammar);
    assert_eq!(graph.num_live(), 10, "Fig. 6.2(b) has ten item sets");

    let a = grammar.symbol("A").unwrap();
    let b_tok = grammar.symbol("b").unwrap();
    graph.add_rule(&mut grammar, a, vec![b_tok]);
    graph.expand_all(&grammar);

    let merged = graph.live_nodes().any(|n| {
        n.kernel.len() == 2 && n.kernel.iter().all(|i| i.is_complete(&grammar))
    });
    assert!(merged, "a kernel holding both `B ::= b .` and `A ::= b .` exists");

    // The language now also contains `a b` via the new rule, and still
    // contains the two original sentences.
    let parser = GssParser::new(&grammar);
    for sentence in ["a b", "c b"] {
        let tokens = tokenize_names(&grammar, sentence).unwrap();
        assert!(
            parser.recognize(&LazyTables::new(&grammar, &graph).unwrap(), &tokens),
            "`{sentence}`"
        );
    }
    let bad = tokenize_names(&grammar, "c a").unwrap();
    assert!(!parser.recognize(&LazyTables::new(&grammar, &graph).unwrap(), &bad));
}

/// §6.2: with reference-counting garbage collection a long editing session
/// does not accumulate garbage without bound, and a mark-and-sweep pass
/// brings the graph back to exactly the size of a freshly generated one.
#[test]
fn gc_keeps_the_graph_bounded_over_an_editing_session() {
    let mut session = IpgSession::with_policy(
        fixtures::booleans(),
        GcPolicy::RefCount,
    );
    session.expand_all();
    let baseline = session.graph_size().total;

    for round in 0..10 {
        let op = format!("op{round}");
        session
            .add_rule_text(&format!(r#"B ::= B "{op}" B"#))
            .unwrap();
        assert!(session
            .parse_sentence(&format!("true {op} false"))
            .unwrap()
            .accepted);
        session
            .remove_rule_text(&format!(r#"B ::= B "{op}" B"#))
            .unwrap();
        assert!(!session
            .parse_sentence(&format!("true {op} false"))
            .unwrap()
            .accepted);
    }
    // Refcounting alone keeps things bounded...
    assert!(session.graph_size().total <= baseline * 4);
    // ...and an explicit sweep returns to (close to) the original size.
    session.collect_garbage();
    session.expand_all();
    assert!(session.graph_size().total <= baseline + 2);
    assert!(session.stats().total_collected() > 0);
}

/// Appendix A: GOTO is only ever called on complete item sets. The lazy
/// tables assert this in debug builds, so driving every parser over the
/// lazy tables on assorted inputs exercises the invariant.
#[test]
fn appendix_a_goto_invariant_holds_under_all_drivers() {
    for grammar in [
        fixtures::booleans(),
        fixtures::arithmetic(),
        fixtures::palindromes(),
        fixtures::fig62(),
    ] {
        let sentences: &[&str] = match () {
            _ if grammar.symbol("or").is_some() => &["true or false and true", "true"],
            _ if grammar.symbol("+").is_some() => &["id + num * ( id )", "id +"],
            _ if grammar.symbol("c").is_some() => &["a b", "c b", "a a"],
            _ => &["a b a", "a b", ""],
        };
        let graph = ItemSetGraph::new(&grammar);
        let gss = GssParser::new(&grammar);
        let pool = ipg_glr::PoolGlrParser::new(&grammar);
        for sentence in sentences {
            let tokens = tokenize_names(&grammar, sentence).unwrap();
            let _ = gss.recognize(&LazyTables::new(&grammar, &graph).unwrap(), &tokens);
            let _ = pool.recognize(&LazyTables::new(&grammar, &graph).unwrap(), &tokens);
        }
    }
}
