//! Cross-crate property tests: the lazily generated IPG tables, the eager
//! PG tables, the two parallel-parser formulations and Earley's algorithm
//! all recognise exactly the same language.

mod common;

use common::{grammar_spec, resolve_sentence, sentence};
use proptest::prelude::*;

use ipg::{ItemSetGraph, LazyTables};
use ipg_earley::EarleyParser;
use ipg_glr::{GssParser, PoolGlrParser};
use ipg_lr::{Lr0Automaton, ParseTable};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The lazy ACTION/GOTO functions answer exactly like the eagerly
    /// generated LR(0) table: both drive the same GSS parser to the same
    /// verdict on arbitrary input.
    #[test]
    fn lazy_tables_equal_eager_tables(spec in grammar_spec(true), codes in sentence(6)) {
        let grammar = spec.build();
        prop_assume!(grammar.validate().is_ok());
        let tokens = resolve_sentence(&grammar, &codes);

        let eager = ParseTable::lr0(&Lr0Automaton::build(&grammar), &grammar);
        let graph = ItemSetGraph::new(&grammar);
        let parser = GssParser::new(&grammar);

        let eager_verdict = parser.recognize(&eager, &tokens);
        let lazy_verdict =
            parser.recognize(&LazyTables::new(&grammar, &graph).unwrap(), &tokens);
        prop_assert_eq!(eager_verdict, lazy_verdict);
    }

    /// The paper-faithful parser-pool formulation (PAR-PARSE) and the
    /// graph-structured-stack formulation agree on epsilon-free grammars.
    ///
    /// (With epsilon rules the simple pool formulation of §3.2 can grow its
    /// stacks unboundedly through cyclic epsilon-reduce chains — a known
    /// limitation that the GSS formulation does not have; the pool parser
    /// then reports divergence instead of looping, which is checked by the
    /// companion property below.)
    #[test]
    fn pool_and_gss_recognise_the_same_language(spec in grammar_spec(false), codes in sentence(6)) {
        let grammar = spec.build();
        prop_assume!(grammar.validate().is_ok());
        let tokens = resolve_sentence(&grammar, &codes);
        let table = ParseTable::lr0(&Lr0Automaton::build(&grammar), &grammar);

        let gss = GssParser::new(&grammar).recognize(&table, &tokens);
        let pool = PoolGlrParser::new(&grammar).recognize(&table, &tokens);
        prop_assert_eq!(gss, pool.expect("pool parser terminates on epsilon-free grammars"));
    }

    /// With epsilon rules allowed, the pool parser either agrees with the
    /// GSS parser or explicitly reports divergence — it never loops and
    /// never gives a wrong verdict silently.
    #[test]
    fn pool_agrees_or_reports_divergence(spec in grammar_spec(true), codes in sentence(5)) {
        let grammar = spec.build();
        prop_assume!(grammar.validate().is_ok());
        let tokens = resolve_sentence(&grammar, &codes);
        let table = ParseTable::lr0(&Lr0Automaton::build(&grammar), &grammar);

        let gss = GssParser::new(&grammar).recognize(&table, &tokens);
        match PoolGlrParser::new(&grammar).recognize(&table, &tokens) {
            Ok(verdict) => prop_assert_eq!(verdict, gss),
            Err(ipg_glr::PoolError::Diverged { .. }) => {
                // Acceptable: cyclic epsilon-reduce chain detected.
            }
        }
    }

    /// Tomita-over-LR(0) (and therefore IPG) recognises the same language
    /// as Earley's algorithm — both claim to handle arbitrary context-free
    /// grammars.
    #[test]
    fn glr_agrees_with_earley(spec in grammar_spec(true), codes in sentence(6)) {
        let grammar = spec.build();
        prop_assume!(grammar.validate().is_ok());
        let tokens = resolve_sentence(&grammar, &codes);

        let table = ParseTable::lr0(&Lr0Automaton::build(&grammar), &grammar);
        let glr = GssParser::new(&grammar).recognize(&table, &tokens);
        let earley = EarleyParser::new(&grammar).recognize(&tokens);
        prop_assert_eq!(glr, earley);
    }

    /// A fully expanded lazy graph has exactly as many states as the
    /// conventional automaton — lazy generation changes *when* states are
    /// built, never *which*.
    #[test]
    fn full_lazy_expansion_matches_conventional_automaton(spec in grammar_spec(true)) {
        let grammar = spec.build();
        prop_assume!(grammar.validate().is_ok());
        let conventional = Lr0Automaton::build(&grammar);
        let graph = ItemSetGraph::new(&grammar);
        graph.expand_all(&grammar);
        prop_assert_eq!(graph.num_live(), conventional.num_states());
    }

    /// Accepted sentences of the forest-producing parser really derive the
    /// input: every extracted tree's fringe equals the token sequence.
    #[test]
    fn forest_trees_cover_the_input(spec in grammar_spec(false), codes in sentence(5)) {
        let grammar = spec.build();
        prop_assume!(grammar.validate().is_ok());
        let tokens = resolve_sentence(&grammar, &codes);
        let table = ParseTable::lr0(&Lr0Automaton::build(&grammar), &grammar);
        let result = GssParser::new(&grammar).parse(&table, &tokens);
        if result.accepted {
            for tree in result.forest.trees(16) {
                prop_assert_eq!(tree.fringe(), tokens.clone());
            }
        } else {
            prop_assert!(result.forest.roots().is_empty());
        }
    }
}
