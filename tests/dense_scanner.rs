//! Dense-scanner equivalence: the byte-table fast path added to the lazy
//! DFA must be *observationally invisible* — every token stream it
//! produces must equal the lazy `char`-map path's, over random token sets
//! and random inputs, including non-ASCII input (which falls back to the
//! lazy path mid-token), bytes at the Latin-1/BMP boundary, inputs that
//! fail to scan, and lexical `MODIFY` mid-stream (where carried-over DFA
//! states keep their dense rows).
//!
//! Case count: `IPG_PROPTEST_CASES` (the CI epoch-stress job runs 256 in
//! release mode), defaulting to a debug-friendly handful locally.

use ipg_lexer::{simple_scanner, Scanner};
use proptest::prelude::*;

/// Keyword pool the random token sets draw from: ASCII operators and
/// words, multi-byte UTF-8 keywords, and keywords spanning the 0xFF/0x100
/// boundary (`ÿ` has a dense row slot, `Ā` does not).
const KEYWORD_POOL: &[&str] = &[
    "if", "then", "else", ":=", "(", ")", "==", "=", "<", "<<", "λ", "λx", "déjà", "→", "ÿ", "ÿĀ",
    "end",
];

/// Word pool the random inputs draw from: pool keywords, identifiers,
/// numbers, non-ASCII words, boundary characters, and characters no token
/// definition covers (so scans can fail — errors must be identical too).
const WORD_POOL: &[&str] = &[
    "if", "then", "else", ":=", "(", ")", "==", "=", "<", "<<", "λ", "λx", "déjà", "→", "ÿ", "ÿĀ",
    "end", "x1", "foo", "42", "007", "-- comment", "§", "❄", "Āā",
];

fn scanner_with(keyword_idx: &[usize]) -> Scanner {
    let keywords: Vec<&str> = keyword_idx.iter().map(|&i| KEYWORD_POOL[i]).collect();
    simple_scanner(&keywords)
}

fn input_of(word_idx: &[usize]) -> String {
    let words: Vec<&str> = word_idx.iter().map(|&i| WORD_POOL[i]).collect();
    words.join(" ")
}

fn cases() -> u32 {
    std::env::var("IPG_PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if cfg!(debug_assertions) { 16 } else { 64 })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    /// Random token set, random input: the shared scanner with the dense
    /// fast path enabled (the default) agrees exactly — tokens *and*
    /// errors — with a fresh scanner restricted to the lazy `char` path.
    #[test]
    fn dense_and_lazy_scanners_tokenize_identically(
        keyword_idx in prop::collection::vec(0..KEYWORD_POOL.len(), 1..6),
        word_idx in prop::collection::vec(0..WORD_POOL.len(), 0..12),
    ) {
        let input = input_of(&word_idx);
        let dense = scanner_with(&keyword_idx);
        let lazy = scanner_with(&keyword_idx);
        lazy.set_dense_scanning(false);
        prop_assert_eq!(dense.tokenize(&input), lazy.tokenize(&input));
        // Scanning again hits the dense rows built by the first pass —
        // still identical (the dense row is a projection of the same
        // memoised transitions).
        prop_assert_eq!(dense.tokenize(&input), lazy.tokenize(&input));
    }

    /// Lexical `MODIFY` mid-stream: warm the scanner (building dense rows),
    /// then change the token definitions — the carried-over states keep
    /// their dense rows, and the post-edit streams must still equal a cold
    /// all-lazy oracle built with the post-edit definitions.
    #[test]
    fn dense_rows_survive_lexical_modify(
        keyword_idx in prop::collection::vec(0..KEYWORD_POOL.len(), 1..5),
        word_idx in prop::collection::vec(0..WORD_POOL.len(), 1..10),
        added in 0..KEYWORD_POOL.len(),
    ) {
        let input = input_of(&word_idx);
        let mut dense = scanner_with(&keyword_idx);
        let _ = dense.tokenize(&input); // warm: dense rows materialise
        dense.add_definition(ipg_lexer::TokenDef::keyword(KEYWORD_POOL[added]));
        let lazy = {
            let mut s = scanner_with(&keyword_idx);
            s.add_definition(ipg_lexer::TokenDef::keyword(KEYWORD_POOL[added]));
            s.set_dense_scanning(false);
            s
        };
        prop_assert_eq!(dense.tokenize(&input), lazy.tokenize(&input));
        let marked = format!("{} {} {}", KEYWORD_POOL[added], input, KEYWORD_POOL[added]);
        prop_assert_eq!(dense.tokenize(&marked), lazy.tokenize(&marked));
        // And removing it again keeps agreeing. (The oracle replays the
        // same edit history: `remove_definition` removes *every* slot with
        // the name, including one the random keyword set already had.)
        dense.remove_definition(KEYWORD_POOL[added]);
        let lazy_removed = {
            let mut s = scanner_with(&keyword_idx);
            s.add_definition(ipg_lexer::TokenDef::keyword(KEYWORD_POOL[added]));
            s.remove_definition(KEYWORD_POOL[added]);
            s.set_dense_scanning(false);
            s
        };
        prop_assert_eq!(dense.tokenize(&input), lazy_removed.tokenize(&input));
    }
}

/// The fast path actually engages on ASCII input: dense bytes and
/// skip-loop bytes are counted, and disabling it changes nothing but the
/// counters.
#[test]
fn dense_counters_engage_on_ascii_and_the_paths_agree() {
    let scanner = simple_scanner(&["if", "then", ":="]);
    let input = "if aaaaaaaaaaaaaaaaaaaaaaaaaa then b := 12345";
    let expected = scanner.tokenize(input).expect("input scans");
    let stats = scanner.dfa_stats();
    assert!(stats.dense_bytes > 0, "dense stepping engaged");
    assert!(stats.skip_loop_bytes > 0, "the identifier run used the skip loop");
    assert!(stats.dense_rows_built > 0, "snapshot states carry dense rows");
    scanner.set_dense_scanning(false);
    let lazy_tokens = scanner.tokenize(input).expect("input scans");
    assert_eq!(expected, lazy_tokens);
    let after = scanner.dfa_stats();
    assert_eq!(stats.dense_bytes, after.dense_bytes, "lazy pass adds no dense bytes");
    assert_eq!(stats.skip_loop_bytes, after.skip_loop_bytes);
}
