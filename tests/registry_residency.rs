//! Registry residency properties, over random grammars × random
//! EXPAND / MODIFY / GC histories:
//!
//! 1. **Accounting exactness** — the incrementally maintained byte
//!    counters (per-chunk caches updated at intern/COW/publish time) must
//!    agree *exactly* with a deep recomputation that walks every node and
//!    published entry, after every step of the history. Any drift means a
//!    maintenance site forgot a before/after delta.
//! 2. **Eviction equivalence** — a tenant that is evicted after every
//!    single request (budget 1, sweep cadence 1: the harshest possible
//!    churn) must stay digest-indistinguishable from a never-evicted
//!    oracle server, including across grammar edits.
//!
//! Case count: `IPG_PROPTEST_CASES` (the CI epoch-stress job runs 256 in
//! release mode), defaulting to a debug-friendly handful locally.

use ipg::{GrammarRegistry, IpgServer, IpgSession};
use ipg_grammar::{Grammar, SymbolId};
use proptest::prelude::*;

mod common;
use common::{digest, grammar_spec, resolve_sentence, NONTERMINAL_NAMES, TERMINAL_NAMES};

/// One step of a residency history. Symbol codes follow the
/// [`GrammarSpec`] convention: `0..3` are terminals, `3..6` non-terminals.
#[derive(Clone, Debug)]
enum Op {
    /// Parse a random sentence — drives lazy `EXPAND` and row publishing.
    Parse(Vec<usize>),
    /// `ADD-RULE` to non-terminal *i* — drives invalidation + COW.
    Add(usize, Vec<usize>),
    /// `DELETE-RULE` (ignored if absent — deterministically).
    Remove(usize, Vec<usize>),
    /// Mark-and-sweep collection — drives retraction and chunk reuse.
    Gc,
}

fn sym(grammar: &Grammar, code: usize) -> SymbolId {
    let name = if code < 3 {
        TERMINAL_NAMES[code]
    } else {
        NONTERMINAL_NAMES[(code - 3) % 3]
    };
    grammar.symbol(name).expect("interned by GrammarSpec::build")
}

fn apply(session: &mut IpgSession, op: &Op) {
    match op {
        Op::Parse(codes) => {
            let tokens = resolve_sentence(session.grammar(), codes);
            session.parse(&tokens);
        }
        Op::Add(nt, rhs_codes) => {
            let lhs = session
                .grammar()
                .symbol(NONTERMINAL_NAMES[*nt])
                .expect("interned");
            let rhs = rhs_codes.iter().map(|&c| sym(session.grammar(), c)).collect();
            session.add_rule(lhs, rhs);
        }
        Op::Remove(nt, rhs_codes) => {
            let lhs = session
                .grammar()
                .symbol(NONTERMINAL_NAMES[*nt])
                .expect("interned");
            let rhs: Vec<SymbolId> =
                rhs_codes.iter().map(|&c| sym(session.grammar(), c)).collect();
            let _ = session.remove_rule(lhs, &rhs);
        }
        Op::Gc => session.collect_garbage(),
    }
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let sentence = || prop::collection::vec(0..3usize, 0..=6);
    let rhs = || prop::collection::vec(0..6usize, 0..=3);
    prop_oneof![
        sentence().prop_map(Op::Parse),
        sentence().prop_map(Op::Parse),
        (0..3usize, rhs()).prop_map(|(nt, r)| Op::Add(nt, r)),
        (0..3usize, rhs()).prop_map(|(nt, r)| Op::Remove(nt, r)),
        Just(Op::Gc),
    ]
}

fn cases() -> u32 {
    std::env::var("IPG_PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if cfg!(debug_assertions) { 10 } else { 48 })
}

/// Holds the cached residency model to its recomputation oracle.
fn assert_exact(session: &IpgSession, step: &str) -> Result<(), TestCaseError> {
    let graph = session.graph();
    prop_assert_eq!(
        graph.resident_bytes(),
        graph.recompute_resident_bytes(),
        "cached bytes drifted from the deep walk after {}",
        step
    );
    let rows: usize = session.chunk_accounting().iter().map(|(_, b)| b).sum();
    prop_assert_eq!(
        rows,
        session.resident_bytes(),
        "accounting rows disagree with session residency after {}",
        step
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    /// After every step of an arbitrary parse/edit/GC history, the cached
    /// byte counters equal a from-scratch walk, and the chunk-accounting
    /// rows sum to the session's residency.
    #[test]
    fn accounting_stays_exact_under_modify_scripts(
        spec in grammar_spec(true),
        script in prop::collection::vec(op_strategy(), 1..=10),
    ) {
        let mut session = IpgSession::new(spec.build());
        assert_exact(&session, "construction")?;
        for (k, op) in script.iter().enumerate() {
            apply(&mut session, op);
            assert_exact(&session, &format!("step {k} ({op:?})"))?;
        }
    }

    /// A tenant evicted after *every* request digest-matches a
    /// never-evicted oracle — parses and edits interleaved.
    #[test]
    fn evicted_then_retouched_tenants_match_never_evicted_oracles(
        spec in grammar_spec(true),
        script in prop::collection::vec(op_strategy(), 1..=8),
    ) {
        let grammar = spec.build();
        // Budget 1 byte, enforcement after every request: each completed
        // request leaves the tenant cold, so every subsequent touch is an
        // evicted-then-retouched rebuild.
        let registry = GrammarRegistry::new(1, 1);
        registry
            .attach("t", IpgServer::new(IpgSession::new(grammar.clone())))
            .expect("attach tenant");
        let oracle = IpgServer::new(IpgSession::new(grammar.clone()));
        for op in &script {
            match op {
                Op::Parse(codes) => {
                    let tokens = resolve_sentence(&grammar, codes);
                    let server = registry.server(0).expect("tenant 0 attached");
                    let (ours_v, ours) = server.parse_versioned(&tokens);
                    let (theirs_v, theirs) = oracle.parse_versioned(&tokens);
                    prop_assert_eq!(ours_v, theirs_v);
                    prop_assert_eq!(
                        digest(&ours),
                        digest(&theirs),
                        "evicted tenant diverged on {:?} (script {:?})",
                        codes,
                        script
                    );
                }
                edit => {
                    let server = registry.server(0).expect("tenant 0 attached");
                    server.modify(|s| apply(s, edit));
                    oracle.modify(|s| apply(s, edit));
                }
            }
            registry.after_request(0);
            prop_assert_eq!(registry.is_evicted(0), Some(true));
        }
        let stats = registry.stats();
        prop_assert_eq!(stats.tenants_active, 1);
        prop_assert!(
            stats.resident_high_water >= stats.resident_bytes,
            "the high-water gauge must dominate current residency"
        );
    }
}
