//! The central correctness property of the paper: after any sequence of
//! `ADD-RULE` / `DELETE-RULE` operations, the incrementally updated
//! item-set graph accepts exactly the same sentences as a parser generated
//! from scratch for the modified grammar.

mod common;

use common::{grammar_spec, resolve_sentence, sentence, NONTERMINAL_NAMES, TERMINAL_NAMES};
use proptest::prelude::*;

use ipg::{GcPolicy, ItemSetGraph, LazyTables};
use ipg_glr::GssParser;
use ipg_grammar::Grammar;
use ipg_lr::{Lr0Automaton, ParseTable};

/// One grammar modification in a random editing session.
#[derive(Clone, Debug)]
enum Edit {
    /// Add rule `N_{lhs} ::= rhs` (same symbol coding as [`GrammarSpec`]).
    Add { lhs: usize, rhs: Vec<usize> },
    /// Remove the i-th currently active rule (modulo the number of rules).
    RemoveNth(usize),
}

fn edit_strategy() -> impl Strategy<Value = Edit> {
    prop_oneof![
        (0..3usize, prop::collection::vec(0..6usize, 0..=3))
            .prop_map(|(lhs, rhs)| Edit::Add { lhs, rhs }),
        (0..12usize).prop_map(Edit::RemoveNth),
    ]
}

fn symbol_for_code(grammar: &mut Grammar, code: usize) -> ipg_grammar::SymbolId {
    if code < 3 {
        grammar.terminal(TERMINAL_NAMES[code])
    } else {
        grammar.nonterminal(NONTERMINAL_NAMES[(code - 3) % 3])
    }
}

/// Applies one edit to a grammar+graph pair (incremental path) and to a
/// plain grammar (from-scratch path), keeping both grammars identical.
fn apply_edit(
    edit: &Edit,
    grammar: &mut Grammar,
    graph: &mut ItemSetGraph,
) {
    match edit {
        Edit::Add { lhs, rhs } => {
            let lhs = grammar.nonterminal(NONTERMINAL_NAMES[*lhs % 3]);
            let rhs: Vec<_> = rhs.iter().map(|&c| symbol_for_code(grammar, c)).collect();
            graph.acknowledge_non_structural_change(grammar);
            graph.add_rule(grammar, lhs, rhs);
        }
        Edit::RemoveNth(n) => {
            // Never remove the START rule (the paper's grammars always keep
            // their start production; removing it would just make every
            // sentence unparseable).
            let removable: Vec<_> = grammar
                .rules()
                .filter(|r| r.lhs != grammar.start_symbol())
                .map(|r| (r.lhs, r.rhs.clone()))
                .collect();
            if removable.is_empty() {
                return;
            }
            let (lhs, rhs) = removable[n % removable.len()].clone();
            graph
                .remove_rule(grammar, lhs, &rhs)
                .expect("rule taken from the active set");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// After every edit of a random editing session, the incrementally
    /// maintained graph and a freshly generated LR(0) table accept exactly
    /// the same sentences.
    #[test]
    fn incremental_update_equals_regeneration(
        spec in grammar_spec(true),
        edits in prop::collection::vec(edit_strategy(), 1..6),
        sentences in prop::collection::vec(sentence(5), 4),
        policy_choice in 0..3usize,
    ) {
        let mut grammar = spec.build();
        prop_assume!(grammar.validate().is_ok());
        let policy = match policy_choice {
            0 => GcPolicy::Retain,
            1 => GcPolicy::RefCount,
            _ => GcPolicy::RefCountWithSweep { threshold_percent: 20 },
        };
        let mut graph = ItemSetGraph::with_policy(&grammar, policy);

        // Warm the lazy graph a little before editing, as an editor would.
        {
            let parser = GssParser::new(&grammar);
            for codes in &sentences {
                let tokens = resolve_sentence(&grammar, codes);
                parser.recognize(&LazyTables::new(&grammar, &graph).unwrap(), &tokens);
            }
        }

        for edit in &edits {
            apply_edit(edit, &mut grammar, &mut graph);

            // Reference: a parser generated from scratch for the *current*
            // grammar.
            let fresh = ParseTable::lr0(&Lr0Automaton::build(&grammar), &grammar);
            let parser = GssParser::new(&grammar);
            for codes in &sentences {
                let tokens = resolve_sentence(&grammar, codes);
                let expected = parser.recognize(&fresh, &tokens);
                let incremental =
                    parser.recognize(&LazyTables::new(&grammar, &graph).unwrap(), &tokens);
                prop_assert_eq!(
                    incremental,
                    expected,
                    "divergence after edit {:?} on sentence {:?}",
                    edit,
                    codes
                );
            }
        }
    }

    /// Removing a rule and adding it back restores the original language.
    #[test]
    fn remove_then_re_add_is_identity(
        spec in grammar_spec(false),
        sentences in prop::collection::vec(sentence(5), 4),
        pick in 0..8usize,
    ) {
        let mut grammar = spec.build();
        prop_assume!(grammar.validate().is_ok());
        let removable: Vec<_> = grammar
            .rules()
            .filter(|r| r.lhs != grammar.start_symbol())
            .map(|r| (r.lhs, r.rhs.clone()))
            .collect();
        prop_assume!(!removable.is_empty());
        let (lhs, rhs) = removable[pick % removable.len()].clone();

        let parser = GssParser::new(&grammar);
        let mut graph = ItemSetGraph::with_policy(&grammar, GcPolicy::RefCount);
        let before: Vec<bool> = sentences
            .iter()
            .map(|codes| {
                let tokens = resolve_sentence(&grammar, codes);
                parser.recognize(&LazyTables::new(&grammar, &graph).unwrap(), &tokens)
            })
            .collect();

        graph.remove_rule(&mut grammar, lhs, &rhs).expect("active rule");
        graph.add_rule(&mut grammar, lhs, rhs.clone());

        let parser = GssParser::new(&grammar);
        let after: Vec<bool> = sentences
            .iter()
            .map(|codes| {
                let tokens = resolve_sentence(&grammar, codes);
                parser.recognize(&LazyTables::new(&grammar, &graph).unwrap(), &tokens)
            })
            .collect();
        prop_assert_eq!(before, after);
    }
}
