//! Context-reuse equivalence: a sequence of parses through one recycled
//! `ParseCtx` — interleaved accepting, rejected and ambiguous inputs, with
//! a `MODIFY` landing mid-sequence — must be digest-identical to
//! fresh-context oracles. This is the correctness side of the
//! allocation-free request path: recycling scratch pools, the forest arena
//! and the frontier maps across requests (and across grammar versions)
//! must be observationally invisible.
//!
//! Case count: `IPG_PROPTEST_CASES` overrides the default (10 debug / 48
//! release).

mod common;

use common::{digest, grammar_spec, resolve_sentence, sentence};
use ipg::{IpgServer, IpgSession};
use ipg_glr::ParseCtx;
use ipg_lexer::simple_scanner;
use proptest::prelude::*;

fn cases() -> u32 {
    std::env::var("IPG_PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if cfg!(debug_assertions) { 10 } else { 48 })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    /// One recycled context vs a fresh context per parse, over random
    /// grammars and random sentences, with an `ADD-RULE` `MODIFY` fired
    /// mid-sequence (the context outlives the grammar version it started
    /// serving).
    #[test]
    fn recycled_context_digests_match_fresh_context_oracles(
        spec in grammar_spec(true),
        sentences in prop::collection::vec(sentence(6), 2..=8),
        modify_at in 0..8usize,
    ) {
        let mut session = IpgSession::new(spec.build());
        let mut ctx = ParseCtx::new();
        let modify_at = modify_at % sentences.len();
        for (i, codes) in sentences.iter().enumerate() {
            if i == modify_at {
                // MODIFY mid-sequence: a new rule with a new terminal, so
                // the item-set graph really invalidates and re-expands
                // while the same context keeps serving.
                let t = session.terminal("zz");
                let n0 = session.nonterminal("N0");
                session.add_rule(n0, vec![t, t]);
            }
            let tokens = resolve_sentence(session.grammar(), codes);
            // Recycled path: same context every iteration.
            let outcome = session.parse_in(&mut ctx, &tokens);
            let recycled = outcome.into_result(ctx.forest().clone());
            // Oracle: a brand-new context (inside `parse`) per call.
            let fresh = session.parse(&tokens);
            prop_assert_eq!(
                digest(&recycled),
                digest(&fresh),
                "parse {} of {:?} (modify at {})",
                i,
                codes,
                modify_at
            );
            // Recognition agrees with parsing through the same context.
            prop_assert_eq!(
                session.recognize_in(&mut ctx, &tokens).accepted(),
                fresh.accepted
            );
        }
    }
}

/// The server-level variant over the text pipeline: one thread's pooled
/// context serves fused `parse_text` requests across a `MODIFY` of both
/// the grammar and the scanner, digest-checked against the owned results
/// (which clone out of the same parse) and a cold per-version server.
#[test]
fn pooled_text_requests_survive_modify_between_requests() {
    let build = || {
        IpgServer::new(IpgSession::new(ipg_grammar::fixtures::booleans()))
            .with_scanner(simple_scanner(&["true", "false", "or", "and", "maybe"]))
    };
    let server = build();
    let inputs = [
        "true or false and true",
        "true or true or true", // ambiguous
        "true or",              // rejected
        "true",
    ];
    for round in 0..3 {
        for input in inputs {
            let pooled = server.parse_text_pooled(input).unwrap();
            let pooled = pooled.into_result();
            let owned = server.parse_text(input).unwrap();
            assert_eq!(digest(&pooled), digest(&owned), "`{input}` round {round}");
            // Cold oracle at the same grammar version.
            let oracle = build();
            if round >= 1 {
                oracle.add_rule_text(r#"B ::= "maybe""#).unwrap();
            }
            if round >= 2 {
                oracle
                    .modify_scanner(|s| s.add_definition(ipg_lexer::TokenDef::keyword("!")))
                    .unwrap();
            }
            assert_eq!(
                digest(&oracle.parse_text(input).unwrap()),
                digest(&owned),
                "`{input}` round {round} vs cold oracle"
            );
        }
        // MODIFY between rounds: grammar first, then the scanner — the
        // same thread-pooled context keeps serving across both.
        if round == 0 {
            server.add_rule_text(r#"B ::= "maybe""#).unwrap();
            assert!(server.parse_text("maybe or true").unwrap().accepted);
        }
        if round == 1 {
            server
                .modify_scanner(|s| s.add_definition(ipg_lexer::TokenDef::keyword("!")))
                .unwrap();
        }
    }
    let stats = server.stats();
    let (reused, fresh) = stats
        .per_thread
        .iter()
        .fold((0, 0), |(r, f), (_, s)| (r + s.ctx_reused, f + s.ctx_fresh));
    assert!(
        reused > fresh,
        "the pooled context must be recycled across MODIFYs: {reused} reused / {fresh} fresh"
    );
}
