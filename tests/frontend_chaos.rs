//! Chaos testing of the frontend's runaway-parse containment.
//!
//! Injects panics at every labeled fault site along the request path
//! (`post-pin`, `mid-gss`, `forest-grow`, `relex`) through a live
//! frontend and asserts the containment contract: every request gets
//! exactly one definitive reply, the worker pool survives at full
//! strength, the panicked context is quarantined (not recycled), and
//! client-side tallies agree with the server's own counters — no
//! accounting drift through the panic path. Also exercises the `CANCEL`
//! verb's note-and-consume round trip.
//!
//! Fault arming is process-global, so every test here serializes on one
//! mutex; the panic hook is silenced for injected faults only.

use std::io::BufReader;
use std::net::TcpStream;
use std::sync::{Mutex, Once};
use std::thread;
use std::time::Duration;

use ipg::{FaultPlan, IpgServer, IpgSession};
use ipg_frontend::protocol::{read_response, write_request, Status, Verb, DEFAULT_MAX_FRAME};
use ipg_frontend::{Client, Frontend, FrontendConfig, ShutdownMode};
use ipg_grammar::fixtures;
use ipg_lexer::simple_scanner;

/// Serializes the tests in this file: fault plans are process-global.
static CHAOS: Mutex<()> = Mutex::new(());

/// Silences the default panic hook for injected faults (they are caught
/// and answered; their backtraces are noise), leaving real panics loud.
fn quiet_injected_panics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|m| m.contains("injected fault"));
            if !injected {
                previous(info);
            }
        }));
    });
}

fn boolean_server() -> IpgServer {
    IpgServer::new(IpgSession::new(fixtures::booleans()))
        .with_scanner(simple_scanner(&["true", "false", "or", "and"]))
}

fn chaos_frontend(workers: usize) -> Frontend {
    Frontend::bind(
        "127.0.0.1:0",
        FrontendConfig {
            workers,
            queue_depth: 64,
            read_timeout: Duration::from_millis(100),
            ..FrontendConfig::default()
        },
        std::sync::Arc::new(boolean_server()),
    )
    .expect("bind frontend")
}

fn connect(frontend: &Frontend) -> Client {
    let mut client = Client::connect(frontend.local_addr()).expect("connect");
    client
        .set_response_timeout(Some(Duration::from_secs(10)))
        .expect("response timeout");
    client
}

/// One panic at each labeled site, each through the wire: the reply is a
/// definitive `ERROR` naming the quarantine, the next request on the same
/// connection succeeds, and at drain the counters match what the client
/// saw — `worker_panics == ctx_quarantined == #sites` and `parses`
/// equals every executed (OK or ERROR) request exactly once.
#[test]
fn a_panic_at_every_labeled_site_is_contained() {
    let _guard = CHAOS.lock().unwrap_or_else(|p| p.into_inner());
    quiet_injected_panics();
    ipg_glr::fault::disarm();

    let frontend = chaos_frontend(2);
    let mut client = connect(&frontend);
    let (mut ok, mut errors) = (0usize, 0usize);

    // The wire-path sites: pin, GSS loop, forest growth. An ambiguous
    // sentence guarantees the forest site is reached.
    for site in ["post-pin", "mid-gss", "forest-grow"] {
        FaultPlan::new().fail(site, 1).arm();
        let response = client
            .parse_text("true or true or true", 0)
            .expect("a panicked parse still gets exactly one reply");
        assert_eq!(response.status, Status::Error, "site {site}");
        let message = String::from_utf8_lossy(&response.payload).into_owned();
        assert!(
            message.contains("quarantined"),
            "site {site}: reply names the quarantine, got `{message}`"
        );
        errors += 1;
        ipg_glr::fault::disarm();

        // The very next request on the same connection parses fine: the
        // worker survived and a fresh context replaced the quarantined one.
        let response = client.parse_text("true or false", 0).expect("follow-up");
        assert_eq!(response.status, Status::Ok, "after {site}");
        ok += 1;
    }

    // The incremental re-lex site, reached through a document edit. The
    // panic poisons the document mutex mid-edit; recovery must clear the
    // poison and rebuild from scratch on the next edit.
    let response = client.open_doc("true or false", 0).expect("open doc");
    assert_eq!(response.status, Status::Ok);
    let (doc_id, accepted, _) = Client::open_doc_outcome(&response).expect("open-doc payload");
    assert!(accepted);
    ok += 1;

    FaultPlan::new().fail("relex", 1).arm();
    let response = client
        .parse_delta(doc_id, 0, 4, "false", 0)
        .expect("a panicked edit still gets exactly one reply");
    assert_eq!(response.status, Status::Error);
    errors += 1;
    ipg_glr::fault::disarm();

    // The poisoned session recovers: the next edit full-rebuilds and
    // accepts.
    let response = client.parse_delta(doc_id, 0, 5, "true", 0).expect("recovery edit");
    assert_eq!(response.status, Status::Ok, "poisoned document session recovers");
    ok += 1;
    let response = client.close_doc(doc_id).expect("close doc");
    assert_eq!(response.status, Status::Ok);
    ok += 1;

    // Full pool strength: both workers serve concurrently after the storm.
    let addr = frontend.local_addr();
    let slow: String = std::iter::once("true".to_owned())
        .chain((0..200).map(|_| " or true".to_owned()))
        .collect();
    let survivors: Vec<_> = (0..2)
        .map(|_| {
            let slow = slow.clone();
            thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect survivor");
                client
                    .set_response_timeout(Some(Duration::from_secs(10)))
                    .expect("response timeout");
                client.parse_text(&slow, 0).expect("survivor parse").status
            })
        })
        .collect();
    for survivor in survivors {
        assert_eq!(survivor.join().unwrap(), Status::Ok);
        ok += 1;
    }

    let stats = frontend.shutdown(ShutdownMode::Drain);
    assert_eq!(stats.worker_panics, 4, "one panic per labeled site");
    assert_eq!(stats.ctx_quarantined, 4, "every panic quarantined its context");
    // No drift: the frontend executed exactly the requests the client saw
    // answered (OK and ERROR both count as executed parses), no more.
    assert_eq!(
        stats.parses,
        ok + errors,
        "client saw {ok} OK + {errors} ERROR but the frontend counted {}",
        stats.parses
    );
}

/// A `CANCEL` note for a not-yet-dequeued request answers that request
/// `CANCELLED` at dequeue — deterministic when the note is sent first —
/// and the ack itself is an `OK` that only means "noted".
#[test]
fn cancel_notes_answer_queued_requests_definitively() {
    let _guard = CHAOS.lock().unwrap_or_else(|p| p.into_inner());
    quiet_injected_panics();
    ipg_glr::fault::disarm();

    let frontend = chaos_frontend(1);
    let mut stream = TcpStream::connect(frontend.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    let mut buf = Vec::new();

    // Note the cancellation *before* its target exists: the note waits in
    // the connection's bounded buffer and is consumed at dequeue.
    write_request(&mut stream, &mut buf, 1, Verb::Cancel, 0, 0, &2u64.to_le_bytes())
        .expect("cancel request");
    write_request(&mut stream, &mut buf, 2, Verb::ParseText, 0, 0, b"true or false")
        .expect("target request");
    write_request(&mut stream, &mut buf, 3, Verb::ParseText, 0, 0, b"true or false")
        .expect("uncancelled request");

    let mut reader = BufReader::new(stream);
    let mut statuses = std::collections::HashMap::new();
    for _ in 0..3 {
        let response =
            read_response(&mut reader, DEFAULT_MAX_FRAME).expect("a reply for every request");
        assert!(
            statuses.insert(response.request_id, response.status).is_none(),
            "duplicate reply for request {}",
            response.request_id
        );
    }
    assert_eq!(statuses[&1], Status::Ok, "the cancel ack means `noted`");
    assert_eq!(statuses[&2], Status::Cancelled, "the target dies at dequeue");
    assert_eq!(statuses[&3], Status::Ok, "later requests are untouched");

    let stats = frontend.shutdown(ShutdownMode::Drain);
    assert_eq!(stats.parses_cancelled, 1);
    assert_eq!(stats.parses, 1, "only the uncancelled parse ran");
    assert_eq!(stats.worker_panics, 0);
}

/// A storm of repeated panics through a pipelined connection: every
/// request is answered exactly once, the panic count matches the armed
/// plan, and afterwards a full-queue burst is admitted without a single
/// `OVERLOADED` — the panic path leaked no queue slots or registry
/// accounting.
#[test]
fn a_panic_storm_leaks_no_accounting() {
    let _guard = CHAOS.lock().unwrap_or_else(|p| p.into_inner());
    quiet_injected_panics();
    ipg_glr::fault::disarm();

    let frontend = chaos_frontend(2);
    let panics = 8usize;
    let total = 32usize;
    FaultPlan::new().fail("mid-gss", panics as u32).arm();

    let mut stream = TcpStream::connect(frontend.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    let mut buf = Vec::new();
    for id in 1..=total as u64 {
        write_request(&mut stream, &mut buf, id, Verb::ParseText, 0, 0, b"true or true or true")
            .expect("storm request");
    }
    let mut reader = BufReader::new(stream);
    let (mut ok, mut errors) = (0usize, 0usize);
    let mut seen = std::collections::HashSet::new();
    for _ in 0..total {
        let response =
            read_response(&mut reader, DEFAULT_MAX_FRAME).expect("a reply for every request");
        assert!(seen.insert(response.request_id), "duplicate reply");
        match response.status {
            Status::Ok => ok += 1,
            Status::Error => errors += 1,
            other => panic!("unexpected status {other:?}"),
        }
    }
    ipg_glr::fault::disarm();
    assert_eq!(errors, panics, "exactly the armed panics surfaced as errors");
    assert_eq!(ok, total - panics);

    // Queue-slot refund check: a burst of exactly `queue_depth` requests
    // on a fresh connection is fully admitted — any slot leaked by the
    // panic path would surface as `OVERLOADED` here.
    let mut stream = TcpStream::connect(frontend.local_addr()).expect("reconnect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    for id in 1..=64u64 {
        write_request(&mut stream, &mut buf, id, Verb::ParseText, 0, 0, b"true or false")
            .expect("burst request");
    }
    let mut reader = BufReader::new(stream);
    for _ in 0..64 {
        let response = read_response(&mut reader, DEFAULT_MAX_FRAME).expect("burst reply");
        assert_eq!(response.status, Status::Ok, "no slot leaked through the storm");
    }

    let stats = frontend.shutdown(ShutdownMode::Drain);
    assert_eq!(stats.worker_panics, panics, "panic count matches the plan");
    assert_eq!(stats.ctx_quarantined, panics);
    assert_eq!(stats.parses, total + 64);
}
