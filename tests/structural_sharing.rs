//! Structural sharing of the persistent item-set store: a `MODIFY`
//! publication forks the graph by cloning chunk pointers, and the §6
//! invalidation copies-on-write exactly the chunks holding invalidated
//! states. These tests pin that down with `Arc::ptr_eq`-level assertions
//! (via [`ItemSetGraph::shared_chunks_with`] / [`ChunkHandle::ptr_eq`])
//! on a synthetic grammar large enough to span several storage chunks.

use std::collections::BTreeSet;

use ipg::{IpgServer, IpgSession, ItemSetGraph, ItemSetKind};
use ipg_bench::synthetic_workload;

/// Chunk indices of the fork's invalidated (non-complete) states.
fn dirty_chunks(graph: &ItemSetGraph) -> BTreeSet<usize> {
    graph
        .live_nodes()
        .filter(|n| n.kind != ItemSetKind::Complete)
        .map(|n| ItemSetGraph::chunk_of_state(n.id))
        .collect()
}

#[test]
fn modify_fork_shares_every_chunk_without_invalidated_states() {
    let workload = synthetic_workload(2000);
    let (lhs, rhs) = workload.edit.clone();
    let session = IpgSession::new(workload.grammar.clone());
    session.graph().expand_all(session.grammar());
    assert!(
        session.graph().num_chunks() >= 4,
        "fixture must span several chunks, got {}",
        session.graph().num_chunks()
    );
    let server = IpgServer::new(session);

    let before = server.current_epoch();
    server.modify(|s| {
        s.add_rule(lhs, rhs.clone());
    });
    let after = server.current_epoch();

    let dirty = dirty_chunks(after.session().graph());
    assert!(!dirty.is_empty(), "the edit invalidated something");
    let invalidations = after
        .session()
        .graph()
        .live_nodes()
        .filter(|n| n.kind != ItemSetKind::Complete)
        .count();
    assert!(
        invalidations <= 4,
        "the synthetic edit has constant impact, got {invalidations}"
    );

    // Arc-level sharing: exactly the chunks holding invalidated states
    // were copied on write; every other chunk is the same storage.
    let shared = before
        .session()
        .graph()
        .shared_chunks_with(after.session().graph());
    assert_eq!(shared.len(), after.session().graph().num_chunks());
    for (c, &is_shared) in shared.iter().enumerate() {
        assert_eq!(
            is_shared,
            !dirty.contains(&c),
            "chunk {c} must be shared iff it holds no invalidated state"
        );
    }
    assert!(shared.iter().filter(|&&s| s).count() >= shared.len() - 2);

    // The same fact through the opaque handles.
    let before_handles = before.session().graph().chunk_handles();
    let after_handles = after.session().graph().chunk_handles();
    for (c, (b, a)) in before_handles.iter().zip(&after_handles).enumerate() {
        assert_eq!(b.ptr_eq(a), shared[c], "handle ptr_eq agrees, chunk {c}");
    }

    // The retired epoch still answers for the pre-edit grammar.
    assert!(before
        .session()
        .graph()
        .live_nodes()
        .all(|n| n.kind == ItemSetKind::Complete));
    assert!(before.session().parse(&workload.sentence).accepted);
    assert!(after.session().parse(&workload.sentence).accepted);
}

#[test]
fn post_fork_expansion_writes_through_cow_without_touching_the_old_epoch() {
    let workload = synthetic_workload(2000);
    let (lhs, rhs) = workload.edit.clone();
    let session = IpgSession::new(workload.grammar.clone());
    session.graph().expand_all(session.grammar());
    let server = IpgServer::new(session);
    let before = server.current_epoch();
    server.modify(|s| {
        s.add_rule(lhs, rhs.clone());
    });

    // Drive the new epoch: re-expansion (RE-EXPAND + refcount GC) runs on
    // the fork, through the COW layer.
    assert!(server.parse(&workload.sentence).accepted);
    server.warm();

    // The pinned old epoch was never written: still fully complete, same
    // state count, still parsing the old language.
    assert!(before
        .session()
        .graph()
        .live_nodes()
        .all(|n| n.kind == ItemSetKind::Complete));
    assert!(before.session().parse(&workload.sentence).accepted);
    // And the fork's writes were COW-counted.
    assert!(server.stats().graph.chunks_cowed > 0);
}

#[test]
fn unshare_all_reproduces_the_deep_fork() {
    let workload = synthetic_workload(500);
    let session = IpgSession::new(workload.grammar.clone());
    session.graph().expand_all(session.grammar());
    let mut fork = session.clone();
    assert!(fork
        .graph()
        .shared_chunks_with(session.graph())
        .iter()
        .all(|&s| s));
    fork.unshare_all();
    assert!(fork
        .graph()
        .shared_chunks_with(session.graph())
        .iter()
        .all(|&s| !s));
    // Deep or shared, the fork answers identically.
    assert_eq!(
        fork.parse(&workload.sentence).accepted,
        session.parse(&workload.sentence).accepted
    );
}
