//! Tenant-addressed serving over the wire: `ATTACH-TENANT`, tenant
//! routing, and the admission-time refusal of unknown tenants.
//!
//! The key robustness property: a request addressing an unknown tenant is
//! answered `ERROR` by the connection reader *at admission* — it never
//! occupies a queue slot or a worker parse, so a client spraying bogus
//! tenant ids cannot displace real work.

use std::sync::Arc;

use ipg::{IpgServer, IpgSession};
use ipg_frontend::protocol::Status;
use ipg_frontend::{Client, Frontend, FrontendConfig, ShutdownMode};

fn boolean_frontend() -> (Frontend, Client) {
    let server = Arc::new(IpgServer::new(
        IpgSession::from_bnf(
            r#"
                B ::= "true" | "false" | B "or" B | B "and" B
                START ::= B
            "#,
        )
        .expect("boolean grammar"),
    ));
    let config = FrontendConfig {
        workers: 2,
        ..FrontendConfig::default()
    };
    let frontend = Frontend::bind("127.0.0.1:0", config, server).expect("bind");
    let client = Client::connect(frontend.local_addr()).expect("connect");
    (frontend, client)
}

#[test]
fn unknown_tenants_are_refused_at_admission() {
    let (frontend, mut client) = boolean_frontend();

    // Tenant 0 is the default tenant: normal service.
    let ok = client.parse_tokens("true or false", 0).expect("request");
    assert_eq!(ok.status, Status::Ok);
    let parses_before = frontend.stats().parses;

    // An unknown tenant answers ERROR...
    client.set_tenant(42);
    let refused = client.parse_tokens("true", 0).expect("request");
    assert_eq!(refused.status, Status::Error);
    assert!(
        String::from_utf8_lossy(&refused.payload).contains("unknown tenant"),
        "the refusal names the tenant"
    );
    // ...without consuming a worker parse (refused at admission)...
    assert_eq!(frontend.stats().parses, parses_before);

    // ...and without poisoning the connection.
    client.set_tenant(0);
    assert_eq!(client.ping().expect("ping").status, Status::Ok);

    frontend.shutdown(ShutdownMode::Drain);
}

#[test]
fn attach_tenant_serves_dialects_and_surfaces_registry_stats() {
    let (frontend, mut client) = boolean_frontend();

    // A dialect of the default tenant: forked copy-on-write, one added
    // alternative.
    let response = client
        .attach_tenant("xor", "default", r#"B ::= B "xor" B"#)
        .expect("attach request");
    assert_eq!(response.status, Status::Ok);
    let xor = Client::attach_tenant_outcome(&response).expect("tenant id payload");
    assert_eq!(xor, 1, "tenant ids are dense after the default tenant");

    // The dialect serves its delta; the base does not know it.
    client.set_tenant(xor);
    let served = client.parse_tokens("true xor false", 0).expect("request");
    assert_eq!(served.status, Status::Ok);
    assert!(served.parse_outcome().expect("outcome").0, "dialect accepts");
    client.set_tenant(0);
    let base = client.parse_tokens("true xor false", 0).expect("request");
    assert_eq!(base.status, Status::Error, "`xor` is not a base token");

    // Duplicate names and unknown bases are ERRORs, not poison.
    let dup = client
        .attach_tenant("xor", "default", r#"B ::= "y""#)
        .expect("request");
    assert_eq!(dup.status, Status::Error);
    let nobase = client
        .attach_tenant("z", "nope", r#"X ::= "x""#)
        .expect("request");
    assert_eq!(nobase.status, Status::Error);

    // An empty base attaches an independent grammar from full BNF.
    let response = client
        .attach_tenant("nums", "", "N ::= \"one\"\nSTART ::= N")
        .expect("attach request");
    assert_eq!(response.status, Status::Ok);
    let nums = Client::attach_tenant_outcome(&response).expect("tenant id payload");
    client.set_tenant(nums);
    let served = client.parse_tokens("one", 0).expect("request");
    assert!(served.parse_outcome().expect("outcome").0);

    // The STATS document surfaces the registry's residency gauges.
    let stats = client.stats_json().expect("stats");
    assert!(stats.contains("\"registry\""), "stats: {stats}");
    assert!(stats.contains("\"tenants_active\": 3"), "stats: {stats}");
    assert!(stats.contains("\"resident_bytes\""), "stats: {stats}");
    assert!(stats.contains("\"chunks_evicted\""), "stats: {stats}");

    // The registry is visible library-side too.
    assert_eq!(frontend.registry().len(), 3);
    assert_eq!(frontend.registry().id_of("nums"), Some(nums));

    frontend.shutdown(ShutdownMode::Drain);
}
