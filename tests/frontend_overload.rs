//! Overload robustness of the network frontend.
//!
//! The contract under test: **every request gets exactly one definitive
//! reply** — parsed, `OVERLOADED`, or `DEADLINE_EXCEEDED` — no silent
//! drops and no hangs, with the frontend's shed counters agreeing with
//! what the clients observed; and malformed/stalled frames poison only
//! the connection that sent them.

use std::io::{BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use ipg::{IpgServer, IpgSession};
use ipg_frontend::protocol::{
    read_response, write_request, Status, Verb, DEFAULT_MAX_FRAME, REQUEST_HEADER_LEN,
};
use ipg_frontend::{Client, Frontend, FrontendConfig, ShutdownMode};
use ipg_grammar::fixtures;
use ipg_lexer::simple_scanner;

fn boolean_server() -> Arc<IpgServer> {
    Arc::new(
        IpgServer::new(IpgSession::new(fixtures::booleans()))
            .with_scanner(simple_scanner(&["true", "false", "or", "and"])),
    )
}

fn config(workers: usize, queue_depth: usize) -> FrontendConfig {
    FrontendConfig {
        workers,
        queue_depth,
        read_timeout: Duration::from_millis(100),
        ..FrontendConfig::default()
    }
}

/// A deliberately slow request: a long `or`-chain is ambiguous under the
/// boolean grammar, so the GLR parse does real work (milliseconds, not
/// microseconds) — enough to keep workers busy while floods pile up.
fn slow_input() -> String {
    let mut input = String::from("true");
    for _ in 0..120 {
        input.push_str(" or true");
    }
    input
}

#[test]
fn flooding_a_tiny_queue_yields_exactly_one_reply_per_request() {
    let frontend = Frontend::bind("127.0.0.1:0", config(2, 2), boolean_server())
        .expect("bind frontend");
    let addr = frontend.local_addr();
    let input = slow_input();

    // 8 blocking connections against 2 workers + 2 queue slots: at most 4
    // requests fit in the system, so a steady flood must shed — and every
    // flooded request must still get its reply.
    const CONNS: usize = 8;
    const PER_CONN: usize = 10;
    let tallies: Vec<(u64, u64)> = thread::scope(|scope| {
        let handles: Vec<_> = (0..CONNS)
            .map(|_| {
                let input = &input;
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    client
                        .set_response_timeout(Some(Duration::from_secs(10)))
                        .expect("response timeout");
                    let (mut ok, mut overloaded) = (0u64, 0u64);
                    for _ in 0..PER_CONN {
                        // `expect`: a hang or a dropped request fails here.
                        let response = client
                            .parse_text(input, 0)
                            .expect("every request gets exactly one reply");
                        match response.status {
                            Status::Ok => {
                                let (accepted, _) =
                                    response.parse_outcome().expect("parse outcome payload");
                                assert!(accepted, "the or-chain is a sentence");
                                ok += 1;
                            }
                            Status::Overloaded => overloaded += 1,
                            other => panic!("unexpected status under flood: {other:?}"),
                        }
                    }
                    (ok, overloaded)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let served: u64 = tallies.iter().map(|(ok, _)| ok).sum();
    let shed: u64 = tallies.iter().map(|(_, ov)| ov).sum();
    assert_eq!(served + shed, (CONNS * PER_CONN) as u64, "full accounting");
    assert!(served > 0, "some requests are served even under flood");
    assert!(shed > 0, "a 2-deep queue under an 8-way flood must shed");

    // The frontend's books agree with the clients' observations.
    let stats = frontend.stats();
    assert_eq!(stats.parses as u64, served);
    assert_eq!(stats.shed_overload as u64, shed);
    assert_eq!(stats.shed_deadline, 0);
    assert_eq!(stats.latency.count(), served, "one latency sample per served request");
    assert_eq!(stats.effective_workers, 2, "configured worker count is surfaced");
    assert!(stats.queue_depth_high_water >= 1);
    assert!(stats.queue_depth_high_water <= 2, "the queue never exceeds its bound");

    let after = frontend.shutdown(ShutdownMode::Drain);
    assert_eq!(after.parses as u64, served, "shutdown loses no accounting");
}

#[test]
fn deadlines_that_expire_in_the_queue_are_shed_without_parsing() {
    let frontend = Frontend::bind("127.0.0.1:0", config(1, 8), boolean_server())
        .expect("bind frontend");
    let addr = frontend.local_addr();
    let input = slow_input();

    // Pipeline three slow no-deadline parses on one connection to occupy
    // the single worker, then send a 1 µs-deadline request: it must wait
    // behind milliseconds of parsing, so its budget expires in the queue
    // and the dequeue check sheds it.
    let mut busy = TcpStream::connect(addr).expect("connect busy pipeline");
    let mut buf = Vec::new();
    for id in 1..=3u64 {
        write_request(&mut busy, &mut buf, id, Verb::ParseText, 0, 0, input.as_bytes())
            .expect("pipeline slow request");
    }

    let mut client = Client::connect(addr).expect("connect");
    client
        .set_response_timeout(Some(Duration::from_secs(10)))
        .expect("response timeout");
    let response = client.parse_text(&input, 1).expect("one reply even when shed");
    assert_eq!(response.status, Status::DeadlineExceeded);

    // The pipelined requests still complete: shedding the expired request
    // refunded worker time, it did not cancel admitted work.
    busy.set_read_timeout(Some(Duration::from_secs(10))).expect("read timeout");
    let mut reader = BufReader::new(busy);
    for _ in 0..3 {
        let response = read_response(&mut reader, DEFAULT_MAX_FRAME).expect("pipelined reply");
        assert_eq!(response.status, Status::Ok);
    }

    let stats = frontend.stats();
    assert_eq!(stats.shed_deadline, 1);
    assert_eq!(stats.parses, 3);
    frontend.shutdown(ShutdownMode::Drain);
}

#[test]
fn malformed_frames_poison_only_their_own_connection() {
    let frontend = Frontend::bind("127.0.0.1:0", config(1, 4), boolean_server())
        .expect("bind frontend");
    let addr = frontend.local_addr();

    // (a) Garbage bytes: the first four read as a ~4 GiB length prefix,
    // rejected by the frame cap before any allocation; the connection is
    // closed without a reply (no request id was decodable).
    let mut garbage = TcpStream::connect(addr).expect("connect");
    garbage.write_all(&[0xFF; 64]).expect("write garbage");
    garbage
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("read timeout");
    let mut byte = [0u8; 1];
    assert_eq!(garbage.read(&mut byte).expect("server closes"), 0, "EOF, not a hang");

    // (b) Unknown verb in a well-formed frame: rejected *with* a reply
    // (the id was decodable), then the connection is closed.
    let mut unknown = TcpStream::connect(addr).expect("connect");
    let mut frame = Vec::new();
    frame.extend_from_slice(&(REQUEST_HEADER_LEN as u32).to_le_bytes());
    frame.extend_from_slice(&7u64.to_le_bytes());
    frame.push(99); // no such verb
    frame.extend_from_slice(&0u32.to_le_bytes()); // deadline
    frame.extend_from_slice(&0u32.to_le_bytes()); // tenant
    unknown.write_all(&frame).expect("write unknown verb");
    unknown
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("read timeout");
    let mut reader = BufReader::new(unknown.try_clone().expect("clone"));
    let response = read_response(&mut reader, DEFAULT_MAX_FRAME).expect("malformed reply");
    assert_eq!(response.request_id, 7);
    assert_eq!(response.status, Status::Malformed);
    assert_eq!(unknown.read(&mut byte).expect("server closes"), 0);

    // (c) Oversized frame: length prefix above the cap, rejected before
    // allocation, connection closed.
    let mut oversized = TcpStream::connect(addr).expect("connect");
    oversized
        .write_all(&((DEFAULT_MAX_FRAME as u32 + 1).to_le_bytes()))
        .expect("write oversized prefix");
    oversized
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("read timeout");
    assert_eq!(oversized.read(&mut byte).expect("server closes"), 0);

    // (d) Truncated frame: a started-then-abandoned frame is the
    // slow-client case; the read timeout bounds how long it can hold the
    // reader, and the connection is dropped without a reply.
    let mut truncated = TcpStream::connect(addr).expect("connect");
    let mut wire = Vec::new();
    write_request(&mut wire, &mut Vec::new(), 5, Verb::Ping, 0, 0, &[]).expect("encode");
    truncated.write_all(&wire[..wire.len() - 2]).expect("write truncated");
    truncated
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("read timeout");
    assert_eq!(truncated.read(&mut byte).expect("server closes"), 0);

    // The server survived all four: a fresh connection works, and the
    // books recorded each rejection class.
    let mut client = Client::connect(addr).expect("fresh connection still accepted");
    assert_eq!(client.ping().expect("ping").status, Status::Ok);
    let (accepted, _) = client
        .parse_text("true or false", 0)
        .expect("parse on fresh connection")
        .parse_outcome()
        .expect("outcome");
    assert!(accepted);

    let stats = frontend.stats();
    assert_eq!(stats.rejected_malformed, 3, "(a), (b) and (c) are malformed frames");
    assert_eq!(stats.io_timeouts, 1, "(d) is a slow client");
    frontend.shutdown(ShutdownMode::Drain);
}
