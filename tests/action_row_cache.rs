//! Correctness of the dense action-row cache layered on the lazy item-set
//! graph: for every `(state, terminal)` cell the cached row must agree with
//! the naive read-off of the node's transitions/reductions fields, before
//! and after grammar modifications (§6/§7); and `GOTO` must only ever be
//! asked about complete item sets (Appendix A).

mod common;

use std::collections::BTreeMap;

use common::{grammar_spec, resolve_sentence, sentence};
use proptest::prelude::*;

use ipg::{GcPolicy, ItemSetGraph, ItemSetKind, LazyTables};
use ipg_glr::GssParser;
use ipg_grammar::{Grammar, RuleId, SymbolId};
use ipg_lr::{ActionCell, ParserTables, StateId};
use ipg_sdf::fixtures::{paper_modification_rule, sdf_grammar_and_scanner};
use ipg_sdf::NormalizedSdf;

/// Asserts that, for every live complete node and every terminal, the lazy
/// tables' dense-row answer equals the naive read-off of the node's
/// `transitions` / `reductions` / `accepting` fields, and likewise for
/// `GOTO` over the non-terminals.
fn assert_rows_agree_with_naive_readoff(grammar: &Grammar, graph: &ItemSetGraph) {
    let ids: Vec<StateId> = graph
        .live_nodes()
        .filter(|n| !n.needs_expansion())
        .map(|n| n.id)
        .collect();
    let terminals: Vec<SymbolId> = grammar.symbols().terminals().collect();
    let nonterminals: Vec<SymbolId> = grammar.symbols().nonterminals().collect();
    for id in ids {
        let (reductions, transitions, accepting): (Vec<RuleId>, BTreeMap<SymbolId, StateId>, bool) = {
            let node = graph.node(id);
            (
                node.reductions.clone(),
                node.transitions.clone(),
                node.accepting,
            )
        };
        let tables = LazyTables::new(grammar, graph).unwrap();
        for &terminal in &terminals {
            let cell: ActionCell = tables.actions(id, terminal);
            assert_eq!(
                cell.shift,
                transitions.get(&terminal).copied(),
                "shift mismatch in state {id:?} on {terminal:?}"
            );
            assert_eq!(
                cell.reductions[..],
                reductions[..],
                "reduce mismatch in state {id:?} on {terminal:?}"
            );
            assert_eq!(
                cell.accept,
                accepting && terminal == grammar.eof_symbol(),
                "accept mismatch in state {id:?} on {terminal:?}"
            );
        }
        for &nt in &nonterminals {
            assert_eq!(
                tables.goto(id, nt),
                transitions.get(&nt).copied(),
                "GOTO mismatch in state {id:?} on {nt:?}"
            );
        }
    }
}

/// A [`ParserTables`] wrapper that fails the test if `GOTO` is ever asked
/// about an item set that is not complete — the Appendix A invariant the
/// lazy `goto` relies on (it no longer expands on demand in any build mode).
struct GotoInvariantChecked<'a> {
    inner: LazyTables<'a>,
}

impl ParserTables for GotoInvariantChecked<'_> {
    fn start_state(&self) -> StateId {
        self.inner.start_state()
    }

    fn actions_into(&self, state: StateId, symbol: SymbolId, out: &mut ActionCell) {
        self.inner.actions_into(state, symbol, out);
    }

    fn goto(&self, state: StateId, symbol: SymbolId) -> Option<StateId> {
        assert_eq!(
            self.inner.graph().node_kind(state),
            Ok(ItemSetKind::Complete),
            "Appendix A invariant violated: GOTO asked about a non-complete item set"
        );
        self.inner.goto(state, symbol)
    }
}

#[test]
fn sdf_rows_agree_before_and_after_the_paper_modification() {
    // The §7 scenario on the real measurement grammar: the SDF definition
    // of SDF, modified by `"(" CF-ELEM+ ")?" -> CF-ELEM`.
    let NormalizedSdf { mut grammar, .. } = sdf_grammar_and_scanner();
    let (lhs_name, rhs_names) = paper_modification_rule();
    let lhs = grammar.symbol(&lhs_name).expect("CF-ELEM exists");
    let mut rhs = Vec::new();
    for name in &rhs_names {
        let id = match grammar.symbol(name) {
            Some(id) => id,
            None => grammar.terminal(name),
        };
        rhs.push(id);
    }

    let mut graph = ItemSetGraph::with_policy(&grammar, GcPolicy::RefCount);
    graph.expand_all(&grammar);
    assert_rows_agree_with_naive_readoff(&grammar, &graph);

    // Count rows present, apply ADD-RULE, and check the §6 precision: rows
    // disappear exactly where item sets were invalidated.
    let rows_before: Vec<StateId> = graph
        .live_nodes()
        .filter(|n| n.row.is_some())
        .map(|n| n.id)
        .collect();
    assert!(!rows_before.is_empty(), "queries built rows");
    graph.add_rule(&mut grammar, lhs, rhs.clone());
    for &id in &rows_before {
        let node = graph.node(id);
        assert_eq!(
            node.row.is_none(),
            node.needs_expansion(),
            "row of state {id:?} must be dropped iff the item set was invalidated"
        );
        if let Some(row) = &node.row {
            // Surviving rows still shadow valid transitions, and the
            // version they carry predates the modification.
            for (&symbol, &target) in &node.transitions {
                assert_eq!(row.target(symbol), Some(target));
            }
            assert!(row.version() < grammar.version());
        }
    }
    assert!(
        graph.live_nodes().any(|n| n.needs_expansion()),
        "the paper modification invalidates at least one item set"
    );

    graph.expand_all(&grammar);
    assert_rows_agree_with_naive_readoff(&grammar, &graph);
    // Rows rebuilt after the modification carry the current grammar
    // version.
    for node in graph.live_nodes() {
        if let Some(row) = &node.row {
            assert!(row.version() <= grammar.version());
        }
    }

    // And the modification must be *observable*: removing it again restores
    // the smaller rule count.
    graph.remove_rule(&mut grammar, lhs, &rhs).expect("rule active");
    graph.expand_all(&grammar);
    assert_rows_agree_with_naive_readoff(&grammar, &graph);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Dense rows agree with the naive read-off on random grammars, after
    /// lazy warm-up, after `ADD-RULE`, and after `DELETE-RULE`, under every
    /// GC policy.
    #[test]
    fn rows_agree_across_random_modifications(
        spec in grammar_spec(true),
        sentences in prop::collection::vec(sentence(5), 3),
        policy_choice in 0..3usize,
    ) {
        let mut grammar = spec.build();
        prop_assume!(grammar.validate().is_ok());
        let policy = match policy_choice {
            0 => GcPolicy::Retain,
            1 => GcPolicy::RefCount,
            _ => GcPolicy::RefCountWithSweep { threshold_percent: 20 },
        };
        let mut graph = ItemSetGraph::with_policy(&grammar, policy);

        // Lazy warm-up through real parses.
        {
            let parser = GssParser::new(&grammar);
            for codes in &sentences {
                let tokens = resolve_sentence(&grammar, codes);
                parser.recognize(&LazyTables::new(&grammar, &graph).unwrap(), &tokens);
            }
        }
        assert_rows_agree_with_naive_readoff(&grammar, &graph);

        // ADD-RULE: reuse the first non-terminal with a fresh terminal.
        let lhs = grammar.symbol("N0").expect("spec interns N0");
        let fresh = grammar.terminal("fresh-token");
        graph.acknowledge_non_structural_change(&grammar);
        graph.add_rule(&mut grammar, lhs, vec![fresh]);
        graph.expand_all(&grammar);
        assert_rows_agree_with_naive_readoff(&grammar, &graph);

        // DELETE-RULE: remove it again.
        graph.remove_rule(&mut grammar, lhs, &[fresh]).expect("active rule");
        graph.expand_all(&grammar);
        assert_rows_agree_with_naive_readoff(&grammar, &graph);
    }

    /// Appendix A in practice: driving the GSS parser over modified
    /// grammars never asks `GOTO` about a non-complete item set.
    #[test]
    fn goto_is_only_asked_about_complete_item_sets(
        spec in grammar_spec(true),
        sentences in prop::collection::vec(sentence(6), 4),
    ) {
        let mut grammar = spec.build();
        prop_assume!(grammar.validate().is_ok());
        let mut graph = ItemSetGraph::with_policy(&grammar, GcPolicy::RefCount);
        {
            let parser = GssParser::new(&grammar);
            for codes in &sentences {
                let tokens = resolve_sentence(&grammar, codes);
                let tables = GotoInvariantChecked {
                    inner: LazyTables::new(&grammar, &graph).unwrap(),
                };
                parser.recognize(&tables, &tokens);
            }
        }
        // Modify, then parse again: the invariant must survive
        // invalidation and re-expansion.
        let lhs = grammar.symbol("N0").expect("spec interns N0");
        let fresh = grammar.terminal("fresh-token");
        graph.acknowledge_non_structural_change(&grammar);
        graph.add_rule(&mut grammar, lhs, vec![fresh]);
        let parser = GssParser::new(&grammar);
        for codes in &sentences {
            let tokens = resolve_sentence(&grammar, codes);
            let tables = GotoInvariantChecked {
                inner: LazyTables::new(&grammar, &graph).unwrap(),
            };
            parser.recognize(&tables, &tokens);
        }
    }
}
