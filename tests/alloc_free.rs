//! Allocation-free request path regression tests.
//!
//! A wrapping global allocator counts allocations *per thread* (so the
//! test stays accurate when the harness runs other tests concurrently in
//! the same process), and the tests assert that a warm request served
//! through the per-thread context pool — scan, parse, forest and all —
//! performs **zero** heap allocations.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use ipg::{IpgServer, IpgSession};
use ipg_grammar::fixtures;
use ipg_lexer::simple_scanner;

/// Pass-through allocator with a per-thread allocation counter.
struct CountingAllocator;

thread_local! {
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

fn note_alloc() {
    // `try_with` so allocations during TLS teardown never panic.
    let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
}

// SAFETY: delegates every operation to `System` unchanged; the only
// addition is a thread-local counter bump on the allocating entry points.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        note_alloc();
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        note_alloc();
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        note_alloc();
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn thread_allocations() -> u64 {
    THREAD_ALLOCS.with(Cell::get)
}

fn text_server() -> IpgServer {
    IpgServer::new(IpgSession::new(fixtures::booleans()))
        .with_scanner(simple_scanner(&["true", "false", "or", "and"]))
}

#[test]
fn second_warm_parse_text_performs_zero_allocations() {
    let server = text_server();
    server.warm();
    let input = "true or false and true or true -- trailing comment\n";
    // First warm request: grows the thread's pooled context (GSS pools,
    // forest arena, scan buffer) and materialises the DFA snapshot. A
    // couple more round out hash-map capacities.
    for _ in 0..3 {
        assert!(server.parse_text_pooled(input).unwrap().accepted());
    }
    // Second warm request of the same input: zero heap allocations, end
    // to end — the acceptance gate of the allocation-free request path.
    let before = thread_allocations();
    let parsed = server.parse_text_pooled(input).unwrap();
    assert!(parsed.accepted());
    assert!(!parsed.forest().roots().is_empty());
    drop(parsed);
    let allocated = thread_allocations() - before;
    assert_eq!(
        allocated, 0,
        "warm fused parse_text must not allocate (counted {allocated})"
    );
}

#[test]
fn warm_pooled_token_parses_perform_zero_allocations() {
    let server = text_server();
    server.warm();
    let tokens = server.tokens("true or true or true").unwrap(); // ambiguous
    for _ in 0..3 {
        assert!(server.parse_pooled(&tokens).accepted());
        assert!(server.recognize(&tokens));
    }
    let before = thread_allocations();
    let parsed = server.parse_pooled(&tokens);
    assert!(parsed.accepted());
    assert!(parsed.forest().is_ambiguous());
    drop(parsed);
    // Recognition rides the same pooled path (no forest at all).
    assert!(server.recognize(&tokens));
    let allocated = thread_allocations() - before;
    assert_eq!(
        allocated, 0,
        "warm pooled parse/recognize must not allocate (counted {allocated})"
    );
}

#[test]
fn warm_requests_stay_allocation_free_across_differing_inputs() {
    let server = text_server();
    server.warm();
    // Mixed accept/reject/ambiguous inputs of different lengths: after one
    // full warm-up cycle the pools have grown to the high-water mark, and
    // the whole interleaved sequence runs without allocating.
    let inputs = [
        "true or false and true or true",
        "true or",
        "true and true and true and true and true",
        "true",
    ];
    for input in inputs {
        let _ = server.parse_text_pooled(input).unwrap();
    }
    let before = thread_allocations();
    for _ in 0..3 {
        for input in inputs {
            let _ = server.parse_text_pooled(input).unwrap();
        }
    }
    let allocated = thread_allocations() - before;
    assert_eq!(
        allocated, 0,
        "warm interleaved requests must not allocate (counted {allocated})"
    );
}

#[test]
fn overlapping_pooled_results_keep_a_context_pooled() {
    let server = text_server();
    server.warm();
    let input = "true or false and true";
    for _ in 0..3 {
        assert!(server.parse_text_pooled(input).unwrap().accepted());
    }
    // Two pooled results alive at once, returned out of order: the second
    // checkout builds a fresh context, and the returns collide on the
    // slot. Exactly one context must survive (last return wins) so the
    // thread's warm path stays allocation-free afterwards.
    let first = server.parse_text_pooled(input).unwrap();
    let second = server.parse_text_pooled(input).unwrap();
    drop(second);
    drop(first);
    let before = thread_allocations();
    assert!(server.parse_text_pooled(input).unwrap().accepted());
    let allocated = thread_allocations() - before;
    assert_eq!(
        allocated, 0,
        "a context must survive overlapping pooled returns (counted {allocated})"
    );
}

#[test]
fn owned_results_cost_exactly_the_forest_copy() {
    let server = text_server();
    server.warm();
    let input = "true or false and true";
    for _ in 0..3 {
        assert!(server.parse_text(input).unwrap().accepted);
    }
    let before = thread_allocations();
    let result = server.parse_text(input).unwrap();
    let allocated = thread_allocations() - before;
    assert!(result.accepted);
    // The owned convenience clones the context's forest arena out — a
    // handful of pool allocations, not the hundreds the pre-fusion
    // pipeline paid per request (token vector + per-token strings +
    // per-derivation vectors).
    assert!(
        (1..=16).contains(&allocated),
        "owned parse_text should cost only the forest copy, counted {allocated}"
    );
}
