//! End-to-end integration of the full ASF/SDF-style pipeline: SDF text →
//! (ISG scanner + IPG parser) → parse SDF inputs, modify the grammar,
//! parse again. This is the paper's experimental setup (§7) as a test.

use ipg::{GcPolicy, IpgSession, ItemSetGraph, LazyTables};
use ipg_glr::GssParser;
use ipg_lexer::TokenDef;
use ipg_lr::{Lr0Automaton, ParseTable};
use ipg_sdf::fixtures::{measurement_inputs, paper_modification_rule, sdf_grammar_and_scanner};
use ipg_sdf::NormalizedSdf;

#[test]
fn all_measurement_inputs_parse_with_ipg_and_pg() {
    let NormalizedSdf { grammar, scanner } = sdf_grammar_and_scanner();
    let pg_table = ParseTable::lr0(&Lr0Automaton::build(&grammar), &grammar);
    let graph = ItemSetGraph::with_policy(&grammar, GcPolicy::RefCount);
    let parser = GssParser::new(&grammar);
    for input in measurement_inputs() {
        let tokens = scanner.tokenize_for(&grammar, input.text).expect(input.name);
        assert!(
            parser.recognize(&pg_table, &tokens),
            "{} must parse with the eager PG table",
            input.name
        );
        assert!(
            parser.recognize(&LazyTables::new(&grammar, &graph).unwrap(), &tokens),
            "{} must parse with the lazy IPG tables",
            input.name
        );
    }
}

#[test]
fn lazy_coverage_is_partial_and_close_to_the_papers_figure() {
    // §5.2: "only 60 percent of the parse table had to be generated to
    // parse the SDF definition of SDF itself".
    let NormalizedSdf { grammar, scanner } = sdf_grammar_and_scanner();
    let full = Lr0Automaton::build(&grammar).num_states();
    let sdf_sdf = measurement_inputs()
        .into_iter()
        .find(|i| i.name == "SDF.sdf")
        .expect("SDF.sdf is a measurement input");
    let tokens = scanner.tokenize_for(&grammar, sdf_sdf.text).expect("scans");

    let graph = ItemSetGraph::with_policy(&grammar, GcPolicy::RefCount);
    let parser = GssParser::new(&grammar);
    assert!(parser.recognize(&LazyTables::new(&grammar, &graph).unwrap(), &tokens));
    let coverage = graph.size().coverage_of(full);
    assert!(
        coverage > 0.35 && coverage < 0.9,
        "coverage {coverage:.2} should be a strict subset of the table, in the region of the paper's ~0.6"
    );
}

#[test]
fn paper_modification_is_absorbed_incrementally() {
    let NormalizedSdf { grammar, mut scanner } = sdf_grammar_and_scanner();
    let mut session = IpgSession::new(grammar);

    // Parse everything once.
    let mut token_streams = Vec::new();
    for input in measurement_inputs() {
        let tokens = scanner
            .tokenize_for(session.grammar(), input.text)
            .expect(input.name);
        assert!(session.parse(&tokens).accepted, "{}", input.name);
        token_streams.push((input.name, tokens));
    }
    let expansions_before = session.stats().expansions;

    // Apply the §7 modification through the session.
    let (lhs_name, rhs_names) = paper_modification_rule();
    let lhs = session.nonterminal(&lhs_name);
    let rhs: Vec<_> = rhs_names
        .iter()
        .map(|n| {
            if n.ends_with('+') {
                session.nonterminal(n)
            } else {
                session.terminal(n)
            }
        })
        .collect();
    session.add_rule(lhs, rhs);
    assert_eq!(session.stats().modifications, 1);
    assert!(session.stats().invalidations > 0);

    // Everything still parses; only the invalidated item sets are
    // re-expanded, not the whole table.
    for (name, tokens) in &token_streams {
        assert!(session.parse(tokens).accepted, "{name} after modification");
    }
    let re_expanded = session.stats().re_expansions;
    assert!(re_expanded > 0, "some item sets must have been re-expanded");
    assert!(
        re_expanded + (session.stats().expansions - expansions_before)
            < expansions_before,
        "the incremental update re-did less work than the original generation \
         (re-expansions: {re_expanded}, original expansions: {expansions_before})"
    );

    // A module that actually uses the new `( ... )?` syntax now parses.
    scanner.add_definition(TokenDef::keyword(")?"));
    let optional_module = r#"
        module Optional
        begin
            context-free syntax
                sorts D
                functions
                    "unit" ( D D )? -> D
        end Optional
    "#;
    let tokens = scanner
        .tokenize_for(session.grammar(), optional_module)
        .expect("new syntax scans");
    assert!(session.parse(&tokens).accepted);
}

#[test]
fn sdf_sourced_grammar_agrees_with_earley() {
    // Cross-check the normalised SDF grammar with a completely independent
    // parsing algorithm on a modest input.
    let NormalizedSdf { grammar, scanner } = sdf_grammar_and_scanner();
    let exp = measurement_inputs()
        .into_iter()
        .find(|i| i.name == "exp.sdf")
        .expect("exp.sdf exists");
    let tokens = scanner.tokenize_for(&grammar, exp.text).expect("scans");
    let earley = ipg_earley::EarleyParser::new(&grammar);
    assert!(earley.recognize(&tokens));

    // And a corrupted input is rejected by both.
    let mut broken = tokens.clone();
    broken.truncate(broken.len() - 2);
    let table = ParseTable::lr0(&Lr0Automaton::build(&grammar), &grammar);
    assert_eq!(
        earley.recognize(&broken),
        GssParser::new(&grammar).recognize(&table, &broken)
    );
    assert!(!earley.recognize(&broken));
}
