//! Graceful drain of the network frontend, racing live traffic.
//!
//! `Frontend::shutdown` must terminate within a bound (no deadlock) while
//! parses and a wire-level `ADD-RULE` are in flight, answer everything
//! that was admitted, and lose nothing: an edit acknowledged with `OK`
//! before the drain must be present in the surviving server — verified by
//! digest against a cold oracle session, the same equivalence the
//! `epoch_equivalence` suite uses.

use std::io::BufReader;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::Duration;

use ipg::{IpgServer, IpgSession};
use ipg_frontend::protocol::{read_response, write_request, Status, Verb, DEFAULT_MAX_FRAME};
use ipg_frontend::{Client, Frontend, FrontendConfig, ShutdownMode};
use ipg_grammar::fixtures;
use ipg_lexer::simple_scanner;

mod common;
use common::digest;

fn boolean_server() -> Arc<IpgServer> {
    Arc::new(
        IpgServer::new(IpgSession::new(fixtures::booleans()))
            .with_scanner(simple_scanner(&["true", "false", "or", "and"])),
    )
}

fn slow_input() -> String {
    let mut input = String::from("true");
    for _ in 0..100 {
        input.push_str(" or true");
    }
    input
}

#[test]
fn drain_races_pinned_parses_and_a_wire_edit_without_losing_either() {
    let server = boolean_server();
    let config = FrontendConfig {
        workers: 2,
        queue_depth: 64,
        read_timeout: Duration::from_millis(100),
        ..FrontendConfig::default()
    };
    let frontend =
        Frontend::bind("127.0.0.1:0", config, Arc::clone(&server)).expect("bind frontend");
    let addr = frontend.local_addr();
    let stop = Arc::new(AtomicBool::new(false));

    // Three connections keep slow parses pinned to epochs for the whole
    // run; each counts the definitive replies it got.
    let parsers: Vec<_> = (0..3)
        .map(|_| {
            let stop = Arc::clone(&stop);
            let input = slow_input();
            thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect parser");
                client
                    .set_response_timeout(Some(Duration::from_secs(10)))
                    .expect("response timeout");
                let (mut served, mut refused) = (0u64, 0u64);
                while !stop.load(Ordering::Acquire) {
                    match client.parse_text(&input, 0) {
                        Ok(response) => match response.status {
                            Status::Ok => served += 1,
                            Status::ShuttingDown => refused += 1,
                            other => panic!("unexpected status: {other:?}"),
                        },
                        // The connection died *after* the drain: the
                        // frontend closed it once idle. Never a timeout —
                        // that would be a lost reply.
                        Err(e) => {
                            assert_ne!(
                                e.kind(),
                                std::io::ErrorKind::TimedOut,
                                "a request hung instead of being answered"
                            );
                            break;
                        }
                    }
                }
                (served, refused)
            })
        })
        .collect();

    // One wire edit racing the parses: B ::= "unknown", acknowledged (or
    // definitively refused) exactly once.
    let editor = thread::spawn(move || {
        thread::sleep(Duration::from_millis(50));
        let mut client = Client::connect(addr).expect("connect editor");
        client
            .set_response_timeout(Some(Duration::from_secs(10)))
            .expect("response timeout");
        let response = client
            .add_rule(r#"B ::= "unknown""#)
            .expect("the edit gets exactly one reply");
        response.status
    });

    // Let the race build up, then drain. A channel bounds the shutdown:
    // if it deadlocks against the pinned parses or the editor, the
    // recv_timeout fails the test instead of hanging it.
    thread::sleep(Duration::from_millis(250));
    let (tx, rx) = mpsc::channel();
    let drainer = thread::spawn(move || {
        tx.send(frontend.shutdown(ShutdownMode::Drain)).unwrap();
    });
    let stats = rx
        .recv_timeout(Duration::from_secs(30))
        .expect("shutdown drains within the bound instead of deadlocking");
    drainer.join().unwrap();

    stop.store(true, Ordering::Release);
    let mut served_total = 0u64;
    for parser in parsers {
        let (served, _refused) = parser.join().unwrap();
        served_total += served;
    }
    let edit_status = editor.join().unwrap();

    assert!(served_total > 0, "parses were in flight during the run");
    // The frontend executed every request the clients saw served (plus
    // the edit, if it won the race) — nothing double-counted or dropped.
    assert!(
        stats.parses as u64 >= served_total,
        "frontend executed {} but clients saw {served_total} served",
        stats.parses
    );

    // No lost edit: an `OK`-acknowledged ADD-RULE survives the drain.
    // Digest-check the served grammar against a cold oracle that has the
    // rule (the `epoch_equivalence` correctness statement).
    match edit_status {
        Status::Ok => {
            let result = server
                .parse_sentence("unknown")
                .expect("the edited terminal resolves after the edit");
            assert!(result.accepted, "the acknowledged rule is live");
            let oracle = IpgSession::new(fixtures::booleans_with_unknown());
            let unknown = oracle.grammar().symbol("unknown").expect("oracle symbol");
            assert_eq!(
                digest(&result),
                digest(&oracle.parse(&[unknown])),
                "served grammar and cold oracle disagree after the drain"
            );
        }
        Status::ShuttingDown => {
            // The edit lost the race to the drain — then it must NOT be
            // half-applied: the terminal is absent, exactly as cold.
            assert!(
                server.parse_sentence("unknown").is_err(),
                "a refused edit must not be partially applied"
            );
        }
        other => panic!("unexpected edit status: {other:?}"),
    }

    // The server outlives its frontend and still serves the library path.
    let result = server.parse_sentence("true or false").expect("library parse");
    assert!(result.accepted);
}

#[test]
fn shed_mode_answers_every_queued_request_definitively() {
    let frontend = Frontend::bind(
        "127.0.0.1:0",
        FrontendConfig {
            workers: 1,
            queue_depth: 16,
            read_timeout: Duration::from_millis(100),
            ..FrontendConfig::default()
        },
        boolean_server(),
    )
    .expect("bind frontend");
    let addr = frontend.local_addr();
    let input = slow_input();

    // Pipeline 8 slow requests on one connection, then shut down in shed
    // mode while most still sit in the queue.
    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut buf = Vec::new();
    for id in 1..=8u64 {
        write_request(&mut stream, &mut buf, id, Verb::ParseText, 0, 0, input.as_bytes())
            .expect("pipeline request");
    }
    thread::sleep(Duration::from_millis(30));
    let stats = frontend.shutdown(ShutdownMode::Shed);

    // Every admitted request got exactly one definitive reply — executed
    // before the drain or shed with SHUTTING_DOWN, never dropped.
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    let mut reader = BufReader::new(stream);
    let mut seen = [false; 8];
    let (mut served, mut shed) = (0usize, 0usize);
    for _ in 0..8 {
        let response = read_response(&mut reader, DEFAULT_MAX_FRAME)
            .expect("a definitive reply for every admitted request");
        let index = usize::try_from(response.request_id - 1).expect("known id");
        assert!(!seen[index], "duplicate reply for request {}", response.request_id);
        seen[index] = true;
        match response.status {
            Status::Ok => served += 1,
            Status::ShuttingDown => shed += 1,
            other => panic!("unexpected status: {other:?}"),
        }
    }
    assert!(seen.iter().all(|&s| s), "all 8 requests answered");
    assert_eq!(stats.parses, served);
    assert_eq!(stats.shed_shutdown, shed);
    assert!(shed > 0, "shed mode refused the still-queued tail");
}
