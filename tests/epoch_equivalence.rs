//! Epoch equivalence: randomized edit scripts — sequences of
//! `ADD-RULE` / `DELETE-RULE` / GC over the Fig. 7 SDF workload,
//! interleaved with parses — must be indistinguishable from single-threaded
//! oracle replays.
//!
//! The server publishes every edit as a new immutable grammar epoch while
//! parses in flight keep the epoch they pinned, so the correctness
//! statement is *per epoch*: whatever grammar version a parse reports, its
//! accept/reject verdict and forest digest must equal those of a fresh,
//! cold session that replayed exactly the edit prefix producing that
//! version.
//!
//! Case count: `IPG_PROPTEST_CASES` (the CI epoch-stress job runs 256 in
//! release mode), defaulting to a debug-friendly handful locally.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::thread;

use ipg::{IpgServer, IpgSession};
use ipg_bench::SdfWorkload;
use ipg_grammar::{Grammar, SymbolId};
use proptest::prelude::*;

mod common;
use common::{digest, Digest};

/// One step of an edit script, over a fixed pool of candidate rules so
/// that the server run and the oracle replay apply bit-identical edits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum EditOp {
    /// `ADD-RULE` of pool rule *i* (re-adding an active rule is the
    /// grammar's documented no-op).
    Add(usize),
    /// `DELETE-RULE` of pool rule *i* (deleting an absent rule is an
    /// error, which the script ignores — deterministically).
    Remove(usize),
    /// A mark-and-sweep collection (language-preserving).
    Gc,
}

/// The SDF fixture shared by every case: the normalised grammar, the
/// pre-lexed measurement inputs plus the discriminating `( … )?` module,
/// and the candidate-rule pool.
struct Fixture {
    grammar: Grammar,
    /// `(name, tokens)` — parsed by every thread in every round.
    inputs: Vec<(&'static str, Vec<SymbolId>)>,
    /// Candidate rules the edit ops index into.
    pool: Vec<(SymbolId, Vec<SymbolId>)>,
}

static FIXTURE: OnceLock<Fixture> = OnceLock::new();

fn fixture() -> &'static Fixture {
    FIXTURE.get_or_init(|| {
        let workload = SdfWorkload::load();
        let input_names: &[&str] = if cfg!(debug_assertions) {
            &["exp.sdf"]
        } else {
            &["exp.sdf", "Exam.sdf"]
        };
        let mut inputs: Vec<(&'static str, Vec<SymbolId>)> = input_names
            .iter()
            .map(|name| (*name, workload.input(name).tokens.clone()))
            .collect();
        // A module using the added `( ... )?` syntax: rejected unless the
        // §7 rule is active — the input that makes edits observable.
        {
            use ipg_lexer::TokenDef;
            use ipg_sdf::fixtures::sdf_grammar_and_scanner;
            let mut scanner = sdf_grammar_and_scanner().scanner;
            scanner.add_definition(TokenDef::keyword(")?"));
            let optional_module = r#"
                module Optional
                begin
                    context-free syntax
                        sorts D
                        functions
                            "unit" ( D D )? -> D
                end Optional
            "#;
            let tokens = scanner
                .tokenize_for(&workload.grammar, optional_module)
                .expect("optional-group module scans");
            inputs.push(("optional-group module", tokens));
        }

        let (cf_elem, paper_rhs) = workload.modification.clone();
        let grammar = workload.grammar.clone();
        let sym = |name: &str| grammar.symbol(name).expect("symbol in the SDF grammar");
        let pool = vec![
            // The §7 modification itself: `"(" CF-ELEM+ ")?" -> CF-ELEM`.
            (cf_elem, paper_rhs),
            // A synthetic alternative reusing interned symbols only.
            (cf_elem, vec![sym(")?")]),
            (cf_elem, vec![sym("("), sym("SORT"), sym(")?")]),
            // A rule of the *base* grammar (`SORT -> CF-ELEM`): deleting it
            // breaks most modules, re-adding restores them — the
            // high-contrast edit.
            (cf_elem, vec![sym("SORT")]),
        ];
        Fixture {
            grammar,
            inputs,
            pool,
        }
    })
}

/// Applies one edit op to a session — the *same* function drives the
/// served run and the oracle replay.
fn apply(session: &mut IpgSession, op: EditOp, pool: &[(SymbolId, Vec<SymbolId>)]) {
    match op {
        EditOp::Add(i) => {
            session.add_rule(pool[i].0, pool[i].1.clone());
        }
        EditOp::Remove(i) => {
            // Deleting an absent rule errors; the script ignores it (the
            // grammar version is untouched on the error path, so server
            // and oracle stay aligned).
            let _ = session.remove_rule(pool[i].0, &pool[i].1);
        }
        EditOp::Gc => session.collect_garbage(),
    }
}

/// Cold oracle: a fresh single-threaded session that replays `prefix`.
fn replay(fx: &Fixture, prefix: &[EditOp]) -> IpgSession {
    let mut session = IpgSession::new(fx.grammar.clone());
    for &op in prefix {
        apply(&mut session, op, &fx.pool);
    }
    session
}

fn op_strategy() -> impl Strategy<Value = EditOp> {
    let pool_len = fixture().pool.len();
    prop_oneof![
        (0..pool_len).prop_map(EditOp::Add),
        (0..pool_len).prop_map(EditOp::Remove),
        Just(EditOp::Gc),
    ]
}

fn script_strategy() -> impl Strategy<Value = Vec<EditOp>> {
    prop::collection::vec(op_strategy(), 1..=6)
}

fn cases() -> u32 {
    std::env::var("IPG_PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if cfg!(debug_assertions) { 10 } else { 48 })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    /// Sequential form: after every single edit, every input parsed
    /// through the server must digest-match a cold oracle that replayed
    /// the prefix — and each edit publishes exactly one epoch.
    #[test]
    fn sequential_edit_scripts_match_cold_oracles(script in script_strategy()) {
        let fx = fixture();
        let server = IpgServer::new(IpgSession::new(fx.grammar.clone()));
        for k in 0..script.len() {
            server.modify(|s| apply(s, script[k], &fx.pool));
            let oracle = replay(fx, &script[..=k]);
            prop_assert_eq!(server.grammar_version(), oracle.grammar().version());
            for (name, tokens) in &fx.inputs {
                let (version, result) = server.parse_versioned(tokens);
                prop_assert_eq!(version, oracle.grammar().version());
                prop_assert_eq!(
                    digest(&result),
                    digest(&oracle.parse(tokens)),
                    "input {} after {:?}",
                    name,
                    &script[..=k]
                );
            }
        }
        prop_assert_eq!(server.epoch_number(), script.len() as u64);
        // With no parses in flight between edits, every retired epoch has
        // been reclaimed by the deferred sweep.
        let stats = server.stats();
        prop_assert_eq!(stats.retired_epochs, 0);
        prop_assert_eq!(stats.graph.epochs_reclaimed, script.len());
    }

    /// Concurrent form: parser threads race the edit script; every parse
    /// is validated against the cold oracle of the exact edit prefix that
    /// produced the grammar version it pinned.
    #[test]
    fn concurrent_edit_scripts_match_per_epoch_oracles(script in script_strategy()) {
        let fx = fixture();
        let server = IpgServer::new(IpgSession::new(fx.grammar.clone()));
        let base_version = server.grammar_version();
        // `(grammar version, number of edits applied)` transitions, pushed
        // inside the modify closure — i.e. before the epoch carrying that
        // version can be published or observed.
        let version_log: Mutex<Vec<(u64, usize)>> = Mutex::new(vec![(base_version, 0)]);
        let done = AtomicBool::new(false);
        let records: Mutex<Vec<(u64, usize, Digest)>> = Mutex::new(Vec::new());

        thread::scope(|scope| {
            for _ in 0..2 {
                let server = &server;
                let done = &done;
                let records = &records;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let finished = done.load(Ordering::Acquire);
                        for (i, (_, tokens)) in fx.inputs.iter().enumerate() {
                            let (version, result) = server.parse_versioned(tokens);
                            local.push((version, i, digest(&result)));
                        }
                        if finished {
                            break;
                        }
                    }
                    records.lock().unwrap().extend(local);
                });
            }
            scope.spawn(|| {
                for (k, &op) in script.iter().enumerate() {
                    server.modify(|s| {
                        apply(s, op, &fx.pool);
                        version_log.lock().unwrap().push((s.grammar().version(), k + 1));
                    });
                    thread::yield_now();
                }
                done.store(true, Ordering::Release);
            });
        });

        let log = version_log.into_inner().unwrap();
        let records = records.into_inner().unwrap();
        prop_assert!(records.len() >= 2 * fx.inputs.len());
        // Oracle digests per observed grammar version, built on demand.
        let mut oracle_digests: HashMap<u64, Vec<Digest>> = HashMap::new();
        for (version, input, observed) in records {
            let expected = oracle_digests.entry(version).or_insert_with(|| {
                let edits = log
                    .iter()
                    .rev()
                    .find(|(v, _)| *v <= version)
                    .expect("every observed version is at or above the base version")
                    .1;
                let oracle = replay(fx, &script[..edits]);
                fx.inputs
                    .iter()
                    .map(|(_, tokens)| digest(&oracle.parse(tokens)))
                    .collect()
            });
            prop_assert_eq!(
                observed,
                expected[input].clone(),
                "input {} on grammar v{} (script {:?})",
                fx.inputs[input].0,
                version,
                script
            );
        }
        // The full script landed and, with all readers gone, every retired
        // epoch has been reclaimed.
        prop_assert_eq!(server.epoch_number(), script.len() as u64);
        let stats = server.stats();
        prop_assert_eq!(stats.retired_epochs, 0);
        prop_assert_eq!(stats.graph.epochs_reclaimed, script.len());
    }
}
