//! Shared helpers for the integration tests: random-grammar and
//! random-sentence strategies used by the property tests, and the
//! structural parse-result digest the serving-equivalence suites compare
//! against their oracles.

// Each test binary compiles its own copy of this module and uses only a
// subset of the helpers.
#![allow(dead_code)]

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use ipg_glr::GssParseResult;
use ipg_grammar::Grammar;
use proptest::prelude::*;

/// A structural digest of one parse result: verdict, root count, bounded
/// ambiguity count, and a hash of the first derivation tree. Forest
/// construction is deterministic for a fixed grammar and input (reduce
/// sets are sorted, frontier iteration is insertion-ordered), so equal
/// grammars must produce equal digests regardless of which thread parsed
/// or how the shared graph's states happened to be numbered. One
/// definition, shared by every serving-equivalence suite, so the oracle
/// contract cannot silently diverge between them.
pub type Digest = (bool, usize, usize, u64);

/// Digests a parse result (see [`Digest`]).
pub fn digest(result: &GssParseResult) -> Digest {
    let tree_hash = match result.forest.first_tree() {
        Some(tree) => {
            let mut hasher = DefaultHasher::new();
            format!("{tree:?}").hash(&mut hasher);
            hasher.finish()
        }
        None => 0,
    };
    (
        result.accepted,
        result.forest.roots().len(),
        result.forest.tree_count(4),
        tree_hash,
    )
}

/// A compact, serialisable description of a random grammar, from which a
/// real [`Grammar`] is built. Keeping the description simple makes proptest
/// shrinking meaningful.
#[derive(Clone, Debug)]
pub struct GrammarSpec {
    /// For each non-terminal (index 0 is the start), its rules; each rule
    /// is a list of symbol codes: `0..num_terminals` are terminals,
    /// `num_terminals..` are non-terminals.
    pub rules: Vec<Vec<Vec<usize>>>,
    /// Number of terminal symbols in the alphabet.
    pub num_terminals: usize,
}

pub const TERMINAL_NAMES: [&str; 5] = ["a", "b", "c", "d", "e"];
pub const NONTERMINAL_NAMES: [&str; 4] = ["N0", "N1", "N2", "N3"];

impl GrammarSpec {
    /// Materialises the spec as a grammar with `START ::= N0`.
    pub fn build(&self) -> Grammar {
        let mut g = Grammar::new();
        let terminals: Vec<_> = TERMINAL_NAMES[..self.num_terminals]
            .iter()
            .map(|n| g.terminal(n))
            .collect();
        let nonterminals: Vec<_> = NONTERMINAL_NAMES[..self.rules.len()]
            .iter()
            .map(|n| g.nonterminal(n))
            .collect();
        for (nt_index, rules) in self.rules.iter().enumerate() {
            for rhs_codes in rules {
                let rhs = rhs_codes
                    .iter()
                    .map(|&code| {
                        if code < self.num_terminals {
                            terminals[code]
                        } else {
                            nonterminals[(code - self.num_terminals) % self.rules.len()]
                        }
                    })
                    .collect();
                g.add_rule(nonterminals[nt_index], rhs);
            }
        }
        g.add_start_rule(nonterminals[0]);
        g
    }
}

/// Strategy for random grammar specs.
///
/// `allow_epsilon` controls whether empty right-hand sides are generated
/// (they are the main source of pathological interactions in generalised
/// LR parsing, so some properties want them and some do not).
pub fn grammar_spec(allow_epsilon: bool) -> impl Strategy<Value = GrammarSpec> {
    let num_terminals = 3usize;
    let num_nonterminals = 3usize;
    let min_len = usize::from(!allow_epsilon);
    let symbol = 0..(num_terminals + num_nonterminals);
    let rhs = prop::collection::vec(symbol, min_len..=3);
    let rules_per_nt = prop::collection::vec(rhs, 1..=3);
    prop::collection::vec(rules_per_nt, num_nonterminals..=num_nonterminals).prop_map(move |rules| {
        GrammarSpec {
            rules,
            num_terminals,
        }
    })
}

/// Strategy for random sentences over the first `num_terminals` terminal
/// names, to be resolved against a concrete grammar.
pub fn sentence(max_len: usize) -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(0..3usize, 0..=max_len)
}

/// Resolves a sentence of terminal codes against a grammar.
pub fn resolve_sentence(grammar: &Grammar, codes: &[usize]) -> Vec<ipg_grammar::SymbolId> {
    codes
        .iter()
        .map(|&c| {
            grammar
                .symbol(TERMINAL_NAMES[c])
                .expect("terminal interned by GrammarSpec::build")
        })
        .collect()
}
