//! The "modular" axis of Fig. 2.1 and the future-work item of §8: languages
//! with user-defined syntax compose grammars from modules, and importing a
//! module should extend an *existing* parser incrementally rather than
//! trigger regeneration. This test drives that workflow end to end using
//! `ipg_grammar::modules` for the composition and `IpgSession` for the
//! incremental extension.

use ipg::IpgSession;
use ipg_grammar::{GrammarModule, ModuleSet, NamedSymbol as S};

fn base_modules() -> ModuleSet {
    let mut set = ModuleSet::new();
    set.add(
        GrammarModule::new("Booleans")
            .start("B")
            .rule("B", vec![S::t("true")])
            .rule("B", vec![S::t("false")])
            .rule("B", vec![S::nt("B"), S::t("or"), S::nt("B")])
            .rule("B", vec![S::nt("B"), S::t("and"), S::nt("B")]),
    );
    set.add(
        GrammarModule::new("Naturals")
            .start("N")
            .rule("N", vec![S::t("zero")])
            .rule("N", vec![S::t("succ"), S::t("("), S::nt("N"), S::t(")")]),
    );
    set.add(
        GrammarModule::new("Comparisons")
            .import("Booleans")
            .import("Naturals")
            .start("B")
            .rule("B", vec![S::nt("N"), S::t("<"), S::nt("N")])
            .rule("B", vec![S::nt("N"), S::t("="), S::nt("N")]),
    );
    set
}

#[test]
fn composed_module_grammar_parses_sentences_of_both_modules() {
    let set = base_modules();
    let grammar = set.compose("Comparisons").unwrap();
    let session = IpgSession::new(grammar);
    for (sentence, expected) in [
        ("true or false", true),
        ("zero < succ ( zero )", true),
        ("succ ( zero ) = zero and true", true),
        ("zero or zero", false),
        ("true < false", false),
    ] {
        assert_eq!(
            session.parse_sentence(sentence).unwrap().accepted,
            expected,
            "`{sentence}`"
        );
    }
}

#[test]
fn importing_a_module_extends_an_existing_session_incrementally() {
    // Start with just the Booleans and an already-warmed parser.
    let set = base_modules();
    let mut session = IpgSession::new(set.compose("Booleans").unwrap());
    assert!(session.parse_sentence("true and false").unwrap().accepted);
    let expansions_before = session.stats().expansions;

    // "Import" the Naturals + Comparisons syntax by feeding the composed
    // module's extra rules into the running session one by one, exactly as
    // the paper proposes to implement module imports on top of the
    // incremental modification capability (§8).
    let extended = set.compose("Comparisons").unwrap();
    let mut added = 0;
    let extra_rules: Vec<(String, Vec<(String, bool)>)> = extended
        .rules()
        .filter(|r| r.lhs != extended.start_symbol())
        .map(|r| {
            (
                extended.name(r.lhs).to_owned(),
                r.rhs
                    .iter()
                    .map(|&s| (extended.name(s).to_owned(), extended.is_terminal(s)))
                    .collect(),
            )
        })
        .collect();
    for (lhs_name, rhs_names) in extra_rules {
        let lhs = session.nonterminal(&lhs_name);
        let rhs = rhs_names
            .iter()
            .map(|(name, is_terminal)| {
                if *is_terminal {
                    session.terminal(name)
                } else {
                    session.nonterminal(name)
                }
            })
            .collect::<Vec<_>>();
        let before = session.grammar().num_active_rules();
        session.add_rule(lhs, rhs);
        if session.grammar().num_active_rules() > before {
            added += 1;
        }
    }
    assert!(added >= 4, "the import added the new rules ({added})");

    // Old and new syntax both parse; the old parts of the table were
    // reused, not regenerated from scratch.
    assert!(session.parse_sentence("true and false").unwrap().accepted);
    assert!(session
        .parse_sentence("succ ( zero ) < zero or true")
        .unwrap()
        .accepted);
    let stats = session.stats();
    assert!(stats.modifications >= 4);
    assert!(
        stats.expansions + stats.re_expansions > expansions_before,
        "new item sets were generated for the imported syntax"
    );
    assert!(stats.invalidations > 0);
}

#[test]
fn removing_an_imported_modules_rules_restores_the_base_language() {
    let set = base_modules();
    let base = set.compose("Booleans").unwrap();
    let full = set.compose("Comparisons").unwrap();
    let mut session = IpgSession::new(full);
    assert!(session.parse_sentence("zero < zero").unwrap().accepted);

    // Remove every rule that is not part of the base module (by name).
    let to_remove: Vec<(String, Vec<String>)> = session
        .grammar()
        .rules()
        .filter(|r| {
            let lhs_name = session.grammar().name(r.lhs).to_owned();
            let rhs_names: Vec<_> = r.rhs.iter().map(|&s| session.grammar().name(s).to_owned()).collect();
            // Keep rules that exist in the base grammar (including START).
            let in_base = base.symbol(&lhs_name).is_some_and(|lhs| {
                let rhs: Option<Vec<_>> = rhs_names.iter().map(|n| base.symbol(n)).collect();
                rhs.is_some_and(|rhs| base.find_rule(lhs, &rhs).is_some())
            });
            !in_base
        })
        .map(|r| {
            (
                session.grammar().name(r.lhs).to_owned(),
                r.rhs.iter().map(|&s| session.grammar().name(s).to_owned()).collect(),
            )
        })
        .collect();
    assert!(!to_remove.is_empty());
    for (lhs_name, rhs_names) in to_remove {
        let lhs = session.grammar().symbol(&lhs_name).unwrap();
        let rhs: Vec<_> = rhs_names
            .iter()
            .map(|n| session.grammar().symbol(n).unwrap())
            .collect();
        session.remove_rule(lhs, &rhs).unwrap();
    }

    assert!(session.parse_sentence("true or false").unwrap().accepted);
    assert!(!session.parse_sentence("zero < zero").unwrap().accepted);
    session.collect_garbage();
    assert!(session.graph_size().total <= 40);
}
