//! Concurrent correctness of the epoch-versioned serving layer: N threads
//! parse the Fig. 7 SDF workload against one `IpgServer` while a writer
//! applies the §7 `ADD-RULE`/`DELETE-RULE` sequence. Every parse must
//! agree — accept/reject verdict *and* forest digest — with a
//! single-threaded oracle run against the grammar version the parse
//! observed; modifications publish new epochs instead of draining the
//! in-flight parses, and retired epochs are reclaimed once their last
//! reader leaves.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::thread;

use ipg::{IpgServer, IpgSession};
use ipg_bench::SdfWorkload;
use ipg_grammar::fixtures;

mod common;
use common::digest;

#[test]
fn racing_parsers_and_modify_agree_with_the_oracle() {
    let workload = SdfWorkload::load();
    let (lhs, rhs) = workload.modification.clone();
    // The two smaller measurement inputs keep the debug-build runtime sane;
    // the release-mode CI job runs the same test over the full set.
    let input_names: &[&str] = if cfg!(debug_assertions) {
        &["exp.sdf", "Exam.sdf"]
    } else {
        &["exp.sdf", "Exam.sdf", "SDF.sdf", "ASF.sdf"]
    };
    let mut inputs: Vec<(&str, Vec<_>)> = input_names
        .iter()
        .map(|name| (*name, workload.input(name).tokens.clone()))
        .collect();
    // A module that uses the added `( ... )?` syntax: rejected by the base
    // grammar, accepted once the §7 rule is in — the discriminating input
    // that makes the two oracle phases observably different.
    {
        use ipg_lexer::TokenDef;
        use ipg_sdf::fixtures::sdf_grammar_and_scanner;
        let mut scanner = sdf_grammar_and_scanner().scanner;
        scanner.add_definition(TokenDef::keyword(")?"));
        let optional_module = r#"
            module Optional
            begin
                context-free syntax
                    sorts D
                    functions
                        "unit" ( D D )? -> D
            end Optional
        "#;
        let tokens = scanner
            .tokenize_for(&workload.grammar, optional_module)
            .expect("optional-group module scans");
        inputs.push(("optional-group module", tokens));
    }

    // --- Single-threaded oracle -----------------------------------------
    // Phase `false` = base grammar, phase `true` = with the §7 rule added.
    let oracle = |modified: bool| -> Vec<(bool, usize, usize, u64)> {
        let mut session = IpgSession::new(workload.grammar.clone());
        if modified {
            session.add_rule(lhs, rhs.clone());
        }
        inputs
            .iter()
            .map(|(_, tokens)| digest(&session.parse(tokens)))
            .collect()
    };
    let oracle_base = oracle(false);
    let oracle_modified = oracle(true);
    assert_ne!(
        oracle_base, oracle_modified,
        "the §7 modification must be observable in the digests"
    );

    // --- Serving run ------------------------------------------------------
    let server = IpgServer::new(IpgSession::new(workload.grammar.clone()));
    let base_version = server.grammar_version();
    // Log of (grammar version, modified?) transitions, written under the
    // same write lock as the modification itself.
    let version_log: Mutex<Vec<(u64, bool)>> = Mutex::new(vec![(base_version, false)]);
    let phase_of = |log: &[(u64, bool)], version: u64| -> bool {
        log.iter()
            .rev()
            .find(|(v, _)| *v <= version)
            .expect("every version is at or above the base version")
            .1
    };

    let rounds = if cfg!(debug_assertions) { 12 } else { 30 };
    let parser_threads = 4;
    thread::scope(|scope| {
        for t in 0..parser_threads {
            let server = &server;
            let inputs = &inputs;
            let version_log = &version_log;
            let oracle_base = &oracle_base;
            let oracle_modified = &oracle_modified;
            scope.spawn(move || {
                for round in 0..rounds {
                    for (i, (name, tokens)) in inputs.iter().enumerate() {
                        let (version, result) = server.parse_versioned(tokens);
                        let modified = phase_of(&version_log.lock().unwrap(), version);
                        let expected = if modified {
                            oracle_modified[i]
                        } else {
                            oracle_base[i]
                        };
                        assert_eq!(
                            digest(&result),
                            expected,
                            "thread {t}, round {round}, input {name}, \
                             grammar v{version} (modified: {modified})"
                        );
                    }
                }
            });
        }
        // The writer races the parsers: add the §7 rule, then delete it
        // again, several times. Each transition is logged under the same
        // exclusive lock that applies it, so the log is consistent with
        // every version number a parse can observe.
        scope.spawn(|| {
            let cycles = if cfg!(debug_assertions) { 4 } else { 10 };
            for _ in 0..cycles {
                server.modify(|s| {
                    s.add_rule(lhs, rhs.clone());
                    version_log
                        .lock()
                        .unwrap()
                        .push((s.grammar().version(), true));
                });
                thread::yield_now();
                server.modify(|s| {
                    s.remove_rule(lhs, &rhs).expect("rule was just added");
                    version_log
                        .lock()
                        .unwrap()
                        .push((s.grammar().version(), false));
                });
                thread::yield_now();
            }
        });
    });

    // The writer really ran, and the graph absorbed its invalidations.
    let stats = server.stats();
    assert!(stats.graph.modifications >= 8);
    assert!(stats.graph.invalidations > 0);
    assert_eq!(
        stats.total_parses(),
        parser_threads * rounds * inputs.len(),
        "every parse was served and recorded"
    );
    // Per-thread aggregation saw every parser thread.
    assert!(stats.per_thread.len() >= parser_threads);
    // Every modification published (and retired) an epoch, and with all
    // readers gone every retired epoch's item-set storage was reclaimed.
    assert_eq!(stats.graph.epochs_published, stats.graph.modifications);
    assert_eq!(stats.graph.epochs_reclaimed, stats.graph.epochs_retired);
    assert_eq!(stats.retired_epochs, 0);
}

/// The non-draining guarantee: a deliberately slow parse that pinned its
/// epoch *before* `ADD-RULE` completes on the old grammar version while
/// the writer publishes — and a parse started after observes the new one.
///
/// Under the old draining design (`MODIFY` took the session write lock)
/// this test would deadlock: the writer would wait for the pinned reader
/// to finish, and the reader waits for the writer's publication signal.
#[test]
fn modify_does_not_drain_in_flight_parses() {
    let server = IpgServer::new(IpgSession::new(fixtures::booleans()));
    server.warm();
    let base_version = server.grammar_version();
    // `true true` is juxtaposition: rejected by the base grammar, accepted
    // once `B ::= B B` is added.
    let tokens = server.tokens("true true").unwrap();

    let entered = Barrier::new(2);
    let published = AtomicBool::new(false);
    thread::scope(|scope| {
        let reader = scope.spawn(|| {
            server.read(|session| {
                entered.wait();
                // Hold the pin until the writer has provably finished.
                while !published.load(Ordering::Acquire) {
                    thread::yield_now();
                }
                // The edit landed, yet this pinned read still serves the
                // grammar version it started on, end to end.
                assert_eq!(session.grammar().version(), base_version);
                let result = session.parse(&tokens);
                assert!(!result.accepted, "old epoch rejects juxtaposition");
                result.grammar_version
            })
        });
        entered.wait();
        // The edit must complete while the reader is still in flight.
        server.add_rule_text(r#"B ::= B B"#).unwrap();
        published.store(true, Ordering::Release);
        let pinned_version = reader.join().expect("reader thread panicked");
        assert_eq!(pinned_version, base_version, "parse was version-tagged with its epoch");
    });

    // A parse started after the publication observes the new grammar.
    let (version, result) = server.parse_versioned(&tokens);
    assert!(version > base_version);
    assert!(result.accepted, "new epoch accepts juxtaposition");
    assert_eq!(result.grammar_version, version);
}

/// Deferred reclamation: a retired epoch's storage (the whole forked
/// session, item sets included) stays alive exactly as long as a reader
/// pins it, and is freed by the sweep that runs once the last reader
/// leaves.
#[test]
fn retired_epochs_free_their_item_sets_after_last_reader_leaves() {
    let server = IpgServer::new(IpgSession::new(fixtures::booleans()));
    server.warm();
    let weak = Arc::downgrade(&server.current_epoch());
    assert!(weak.upgrade().is_some(), "current epoch is alive");

    let pinned = Barrier::new(2);
    let release = Barrier::new(2);
    thread::scope(|scope| {
        let reader = scope.spawn(|| {
            server.read(|session| {
                pinned.wait();
                release.wait();
                // Still serving: the pinned item sets must all be intact.
                assert!(session.parse_sentence("true or false").unwrap().accepted);
            });
        });
        pinned.wait();
        server.add_rule_text(r#"B ::= "maybe""#).unwrap();
        // Retired but pinned: the storage must survive...
        let stats = server.stats();
        assert_eq!(stats.retired_epochs, 1);
        assert_eq!(stats.graph.epochs_retired, 1);
        assert_eq!(stats.graph.epochs_reclaimed, 0);
        assert!(weak.upgrade().is_some(), "pinned epoch survives retirement");
        release.wait();
        reader.join().expect("reader thread panicked");
    });

    // ...and the reader's release ran the deferred sweep: the retired
    // epoch, with its item-set graph, is gone.
    assert!(weak.upgrade().is_none(), "item-set storage was freed");
    let stats = server.stats();
    assert_eq!(stats.retired_epochs, 0);
    assert_eq!(stats.graph.epochs_reclaimed, 1);
}

/// Chunk-granular reclamation: dropping a retired epoch frees exactly the
/// storage chunks no live epoch shares. The chunks the successor epoch
/// inherited (everything the edit did not invalidate) must survive the
/// retired epoch's reclamation, because the successor still serves from
/// them; only the copied-on-write predecessors die with their epoch.
#[test]
fn retired_epochs_free_only_chunks_no_live_epoch_shares() {
    use ipg_bench::synthetic_workload;

    let workload = synthetic_workload(2000);
    let (lhs, rhs) = workload.edit.clone();
    let session = IpgSession::new(workload.grammar.clone());
    session.graph().expand_all(session.grammar());
    let server = IpgServer::new(session);

    let epoch0 = server.current_epoch();
    let observers: Vec<_> = epoch0
        .session()
        .graph()
        .chunk_handles()
        .iter()
        .map(|handle| handle.observer())
        .collect();
    assert!(observers.len() >= 4, "fixture spans several chunks");

    server.modify(|s| {
        s.add_rule(lhs, rhs.clone());
    });
    let epoch1 = server.current_epoch();
    let shared = epoch0
        .session()
        .graph()
        .shared_chunks_with(epoch1.session().graph());
    assert!(shared.iter().any(|&s| s), "untouched chunks stay shared");
    assert!(shared.iter().any(|&s| !s), "invalidated chunks were copied");

    // Retired but pinned: every chunk of epoch 0 is still alive.
    assert_eq!(server.stats().retired_epochs, 1);
    assert!(observers.iter().all(|o| o.is_alive()));

    // Release the pin; the deferred sweep reclaims epoch 0 — but only the
    // chunks it owned alone. Shared chunks live on inside epoch 1.
    drop(epoch0);
    let stats = server.stats();
    assert_eq!(stats.retired_epochs, 0);
    assert_eq!(stats.graph.epochs_reclaimed, 1);
    for (c, observer) in observers.iter().enumerate() {
        assert_eq!(
            observer.is_alive(),
            shared[c],
            "chunk {c}: alive iff the live epoch shares it"
        );
    }
    // The surviving epoch still serves from the shared chunks.
    assert!(server.parse(&workload.sentence).accepted);
}

#[test]
fn warm_shared_table_serves_identical_results_across_thread_counts() {
    let workload = SdfWorkload::load();
    let server = IpgServer::new(IpgSession::new(workload.grammar.clone()));
    server.warm();
    let requests: Vec<Vec<_>> = (0..12)
        .map(|i| workload.inputs[i % 2].tokens.clone())
        .collect();
    let expansions_before = server.stats().graph.total_expansions();

    let single: Vec<_> = server.parse_many(&requests, 1).iter().map(digest).collect();
    for threads in [2, 4, 8] {
        let multi: Vec<_> = server
            .parse_many(&requests, threads)
            .iter()
            .map(digest)
            .collect();
        assert_eq!(single, multi, "{threads}-thread results differ");
    }
    // A warm table serves reads only: no expansion happened.
    assert_eq!(server.stats().graph.total_expansions(), expansions_before);
}
