//! Property tests for the ISG substrate: the lazily determinised DFA always
//! agrees with direct NFA simulation, and incremental token-definition
//! changes behave like rebuilding the scanner from scratch.

use ipg_lexer::{simple_scanner, CharClass, LazyDfa, Nfa, Regex, Scanner, TokenDef};
use proptest::prelude::*;

/// A small pool of token regexes to combine into scanners.
fn regex_pool() -> Vec<(&'static str, Regex)> {
    vec![
        ("kw_if", Regex::literal("if")),
        ("kw_in", Regex::literal("in")),
        ("ident", Regex::concat([
            Regex::class(CharClass::ident_start()),
            Regex::class(CharClass::ident_continue()).star(),
        ])),
        ("number", Regex::class(CharClass::digit()).plus()),
        ("arrow", Regex::literal("->")),
        ("dashes", Regex::concat([
            Regex::literal("--"),
            Regex::class(CharClass::single('\n').negate()).star(),
        ])),
    ]
}

fn input_strategy() -> impl Strategy<Value = String> {
    // Strings over a small alphabet that exercises overlaps between the
    // token definitions (identifiers vs keywords, `-` vs `--` vs `->`).
    proptest::collection::vec(
        prop_oneof![
            Just("if".to_owned()),
            Just("in".to_owned()),
            Just("x".to_owned()),
            Just("if2".to_owned()),
            Just("42".to_owned()),
            Just("->".to_owned()),
            Just("-".to_owned()),
            Just(" ".to_owned()),
            Just("\n".to_owned()),
        ],
        0..12,
    )
    .prop_map(|parts| parts.concat())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The lazy DFA's longest match equals the NFA reference at every
    /// starting offset of arbitrary input.
    #[test]
    fn lazy_dfa_agrees_with_nfa_reference(input in input_strategy(), subset in proptest::collection::vec(any::<bool>(), 6)) {
        let pool = regex_pool();
        let chosen: Vec<Regex> = pool
            .iter()
            .zip(&subset)
            .filter(|(_, &keep)| keep)
            .map(|((_, r), _)| r.clone())
            .collect();
        prop_assume!(!chosen.is_empty());
        let nfa = Nfa::build(&chosen);
        let dfa = LazyDfa::new(Nfa::build(&chosen));
        let chars: Vec<char> = input.chars().collect();
        for start in 0..=chars.len() {
            let reference = nfa.longest_match(&chars[start..]);
            let lazy = dfa.longest_match(&chars, start);
            prop_assert_eq!(lazy, reference, "offset {} of {:?}", start, input);
        }
    }

    /// Adding a token definition incrementally gives the same tokenisation
    /// as building the scanner with that definition from the start.
    #[test]
    fn incremental_definition_addition_equals_rebuild(input in input_strategy()) {
        let mut incremental = simple_scanner(&["->", "--"]);
        incremental.add_definition(TokenDef::keyword("if"));
        let fresh = Scanner::new({
            let mut defs = simple_scanner(&["->", "--"]).definitions().to_vec();
            defs.push(TokenDef::keyword("if"));
            defs
        });
        let a = incremental.tokenize(&input);
        let b = fresh.tokenize(&input);
        prop_assert_eq!(a, b);
    }

    /// Removing a token definition incrementally (which carries over the
    /// unaffected DFA states) gives the same tokenisation as building the
    /// scanner without that definition from the start.
    #[test]
    fn incremental_definition_removal_equals_rebuild(input in input_strategy()) {
        let mut incremental = simple_scanner(&["->", "--", "if"]);
        // Materialise part of the DFA before the edit so there is
        // something to carry over.
        let _ = incremental.tokenize(&input);
        let _ = incremental.tokenize("if x -> 42");
        assert!(incremental.remove_definition("if"));
        let fresh = simple_scanner(&["->", "--"]);
        let a = incremental.tokenize(&input);
        let b = fresh.tokenize(&input);
        prop_assert_eq!(a, b);
        // Add-after-remove still matches a fresh build with the same
        // priority order (re-adding appends at the lowest priority).
        incremental.add_definition(TokenDef::keyword("if"));
        let fresh2 = Scanner::new({
            let mut defs = simple_scanner(&["->", "--"]).definitions().to_vec();
            defs.push(TokenDef::keyword("if"));
            defs
        });
        prop_assert_eq!(incremental.tokenize(&input), fresh2.tokenize(&input));
    }

    /// Scanning never panics and either yields tokens covering the input or
    /// a position-accurate error.
    #[test]
    fn scanning_is_total(input in input_strategy()) {
        let scanner = simple_scanner(&["if", "->", "--"]);
        match scanner.tokenize(&input) {
            Ok(tokens) => {
                // Tokens are in order and non-overlapping.
                let mut last_end = 0;
                for t in &tokens {
                    prop_assert!(t.start >= last_end);
                    prop_assert!(t.end > t.start);
                    last_end = t.end;
                }
            }
            Err(ipg_lexer::ScanError::UnexpectedCharacter { offset, .. }) => {
                prop_assert!(offset <= input.len());
            }
            Err(other) => return Err(TestCaseError::fail(format!("unexpected error {other:?}"))),
        }
    }
}
