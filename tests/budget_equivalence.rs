//! Budget equivalence: a [`ParseBudget`] must never change a parse's
//! *answer*, only its *availability*. Over random grammars and random
//! sentences:
//!
//! - a parse that finishes under a generous budget is digest-identical
//!   (accept/reject, tree shape, ambiguity census) to the unbudgeted
//!   parse through the same server — the stride-64 budget checks in the
//!   hot loops are observationally free;
//! - under an arbitrary tight fuel budget, the outcome is either that
//!   same digest-identical result or `ServerError::Exhausted` — never a
//!   silently wrong accept/reject.
//!
//! Case count: `IPG_PROPTEST_CASES` overrides the default (10 debug / 48
//! release); the CI epoch-stress job runs this suite at 256.

mod common;

use common::{digest, grammar_spec, sentence, TERMINAL_NAMES};
use ipg::{IpgServer, IpgSession, ParseBudget, ServerError};
use proptest::prelude::*;

fn cases() -> u32 {
    std::env::var("IPG_PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if cfg!(debug_assertions) { 10 } else { 48 })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    #[test]
    fn budgets_change_availability_never_answers(
        spec in grammar_spec(true),
        sentences in prop::collection::vec(sentence(6), 1..=6),
        fuel in 1usize..4096,
    ) {
        let server = IpgServer::new(IpgSession::new(spec.build()));
        for codes in &sentences {
            let words: Vec<&str> = codes.iter().map(|&c| TERMINAL_NAMES[c]).collect();
            let input = words.join(" ");
            let oracle = server.parse_sentence(&input).expect("interned terminals");

            // Generous budget: finishes, and identically.
            let generous = ParseBudget::default()
                .with_fuel(u64::MAX / 2)
                .with_max_gss_bytes(usize::MAX / 2)
                .with_max_forest_bytes(usize::MAX / 2);
            let budgeted = server
                .parse_sentence_budgeted(&input, generous)
                .expect("a generous budget never trips");
            prop_assert_eq!(
                digest(&budgeted),
                digest(&oracle),
                "generous budget changed the answer for `{}`",
                input
            );

            // Tight budget: either the identical answer or a definitive
            // exhaustion — never a different answer.
            match server.parse_sentence_budgeted(&input, ParseBudget::default().with_fuel(fuel as u64)) {
                Ok(result) => prop_assert_eq!(
                    digest(&result),
                    digest(&oracle),
                    "fuel {} changed the answer for `{}`",
                    fuel,
                    input
                ),
                Err(ServerError::Exhausted(_)) => {}
                Err(e) => prop_assert!(false, "unexpected error under fuel {fuel}: {e}"),
            }
        }
    }
}
