//! Scanner snapshots under load: tokenizer threads race the lazy DFA's
//! subset construction *and* lexical-syntax modifications, and every token
//! stream must match a cold single-threaded scanner oracle for the epoch
//! (lexical generation) it was produced against.
//!
//! This is the lexer half of the epoch scheme: `tokenize` pins one
//! immutable DFA snapshot per call (the hot loop takes no locks), misses
//! funnel into the DFA's writer and refresh the pin, and `modify_scanner`
//! publishes a *new* scanner (with a fresh lazy DFA) as part of a new
//! grammar epoch while in-flight tokenizations finish on the snapshot they
//! pinned.

use std::sync::atomic::{AtomicBool, Ordering};
use std::thread;

use ipg::{IpgServer, IpgSession};
use ipg_grammar::fixtures;
use ipg_lexer::{simple_scanner, ScanError, Scanner, Token, TokenDef};

const INPUTS: &[&str] = &[
    "if x1 then y := 42 else ( z )",
    "begin 007 agent end -- trailing comment",
    "iffy if 0 then then",
    "  \t lots of ws \n 12345",
];

fn cold_tokens(make: impl Fn() -> Scanner, input: &str) -> Result<Vec<Token>, ScanError> {
    // A fresh scanner per call: the single-threaded, cold-DFA oracle.
    make().tokenize(input)
}

#[test]
fn racing_tokenizers_agree_with_cold_oracles() {
    let keywords = &["if", "then", "else", ":=", "(", ")", "begin", "end"];
    let shared = simple_scanner(keywords);
    let expected: Vec<_> = INPUTS
        .iter()
        .map(|input| cold_tokens(|| simple_scanner(keywords), input))
        .collect();
    thread::scope(|scope| {
        for t in 0..4 {
            let shared = &shared;
            let expected = &expected;
            scope.spawn(move || {
                // Each thread starts at a different input so the lazy DFA
                // is expanded from several directions at once.
                for round in 0..20 {
                    for (i, input) in INPUTS.iter().enumerate().skip((t + round) % INPUTS.len()) {
                        assert_eq!(&shared.tokenize(input), &expected[i], "input `{input}`");
                    }
                }
            });
        }
    });
    // All threads materialised one shared cache, and racing did not
    // duplicate states: the set of DFA states reached is exactly the
    // cold oracle's, whatever the interleaving.
    let oracle = simple_scanner(keywords);
    for input in INPUTS {
        let _ = oracle.tokenize(input);
    }
    assert_eq!(shared.dfa_stats().states, oracle.dfa_stats().states);
    assert!(shared.dfa_stats().cache_hits > 0);
}

#[test]
fn lexical_modify_races_tokenizers_with_per_epoch_oracles() {
    let keywords = &["true", "false", "or", "and"];
    let server = IpgServer::new(IpgSession::new(fixtures::booleans()))
        .with_scanner(simple_scanner(keywords));
    let input = "true % false";
    let stable_input = "true or false -- comment\n";

    // Cold single-threaded oracles for the two lexical generations the
    // writer cycles between. `Scanner::rebuilds` counts definition changes,
    // so generation parity identifies the definition set: even = base,
    // odd = base + `%`.
    let base = simple_scanner(keywords);
    let with_percent = {
        let mut s = simple_scanner(keywords);
        s.add_definition(TokenDef::keyword("%"));
        s
    };
    let oracle_base = base.tokenize(input);
    let oracle_percent = with_percent.tokenize(input);
    assert!(oracle_base.is_err(), "`%` does not scan under the base syntax");
    let oracle_stable_base = base.tokenize(stable_input).unwrap();
    let oracle_stable_percent = with_percent.tokenize(stable_input).unwrap();
    assert_eq!(oracle_stable_base, oracle_stable_percent);

    let cycles = if cfg!(debug_assertions) { 8 } else { 20 };
    let done = AtomicBool::new(false);
    thread::scope(|scope| {
        for _ in 0..4 {
            let server = &server;
            let done = &done;
            let oracle_base = &oracle_base;
            let oracle_percent = &oracle_percent;
            let oracle_stable = &oracle_stable_base;
            scope.spawn(move || loop {
                let finished = done.load(Ordering::Acquire);
                // Pin one epoch; everything observed below belongs to it.
                let epoch = server.current_epoch();
                let scanner = epoch.scanner().expect("server has a scanner");
                let generation = scanner.rebuilds();
                let expected = if generation.is_multiple_of(2) {
                    oracle_base
                } else {
                    oracle_percent
                };
                assert_eq!(
                    &scanner.tokenize(input),
                    expected,
                    "lexical generation {generation}"
                );
                // Inputs untouched by the edit scan identically everywhere.
                assert_eq!(&scanner.tokenize(stable_input).unwrap(), oracle_stable);
                drop(epoch);
                if finished {
                    break;
                }
            });
        }
        scope.spawn(|| {
            for _ in 0..cycles {
                server
                    .modify_scanner(|s| s.add_definition(TokenDef::keyword("%")))
                    .unwrap();
                thread::yield_now();
                server
                    .modify_scanner(|s| {
                        assert!(s.remove_definition("%"));
                    })
                    .unwrap();
                thread::yield_now();
            }
            done.store(true, Ordering::Release);
        });
    });

    // Every lexical edit published an epoch sharing the table state...
    let stats = server.stats();
    assert_eq!(stats.graph.epochs_published, 2 * cycles);
    assert_eq!(stats.graph.modifications, 0, "no grammar modification ran");
    // ...and with all readers gone, every retired epoch (and its DFA
    // snapshot) has been reclaimed.
    assert_eq!(stats.retired_epochs, 0);
    assert_eq!(stats.graph.epochs_reclaimed, 2 * cycles);
}

#[test]
fn pinned_epoch_keeps_its_lexical_syntax_across_modify() {
    let server = IpgServer::new(IpgSession::new(fixtures::booleans()))
        .with_scanner(simple_scanner(&["true", "or"]));
    let pinned = server.current_epoch();
    server
        .modify_scanner(|s| s.add_definition(TokenDef::keyword("%")))
        .unwrap();
    // The pinned epoch still scans with the old lexical syntax...
    assert!(matches!(
        pinned.scanner().unwrap().tokenize("true % true"),
        Err(ScanError::UnexpectedCharacter { .. })
    ));
    // ...while the current epoch scans `%` (and then fails later, in the
    // grammar, which has no such terminal).
    assert!(matches!(
        server.parse_text("true % true"),
        Err(ipg::ServerError::Scan(ScanError::UnknownTerminal { .. }))
    ));
    // Both epochs share one table state: same grammar version.
    assert_eq!(pinned.grammar_version(), server.grammar_version());
}
