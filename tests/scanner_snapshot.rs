//! Scanner snapshots under load: tokenizer threads race the lazy DFA's
//! subset construction *and* lexical-syntax modifications, and every token
//! stream must match a cold single-threaded scanner oracle for the epoch
//! (lexical generation) it was produced against.
//!
//! This is the lexer half of the epoch scheme: `tokenize` pins one
//! immutable DFA snapshot per call (the hot loop takes no locks), misses
//! funnel into the DFA's writer and refresh the pin, and `modify_scanner`
//! publishes a *new* scanner (with a fresh lazy DFA) as part of a new
//! grammar epoch while in-flight tokenizations finish on the snapshot they
//! pinned.

use std::sync::atomic::{AtomicBool, Ordering};
use std::thread;

use ipg::{IpgServer, IpgSession};
use ipg_grammar::fixtures;
use ipg_lexer::{simple_scanner, ScanError, Scanner, Token, TokenDef};

const INPUTS: &[&str] = &[
    "if x1 then y := 42 else ( z )",
    "begin 007 agent end -- trailing comment",
    "iffy if 0 then then",
    "  \t lots of ws \n 12345",
];

fn cold_tokens(make: impl Fn() -> Scanner, input: &str) -> Result<Vec<Token>, ScanError> {
    // A fresh scanner per call: the single-threaded, cold-DFA oracle.
    make().tokenize(input)
}

#[test]
fn racing_tokenizers_agree_with_cold_oracles() {
    let keywords = &["if", "then", "else", ":=", "(", ")", "begin", "end"];
    let shared = simple_scanner(keywords);
    let expected: Vec<_> = INPUTS
        .iter()
        .map(|input| cold_tokens(|| simple_scanner(keywords), input))
        .collect();
    thread::scope(|scope| {
        for t in 0..4 {
            let shared = &shared;
            let expected = &expected;
            scope.spawn(move || {
                // Each thread starts at a different input so the lazy DFA
                // is expanded from several directions at once.
                for round in 0..20 {
                    for (i, input) in INPUTS.iter().enumerate().skip((t + round) % INPUTS.len()) {
                        assert_eq!(&shared.tokenize(input), &expected[i], "input `{input}`");
                    }
                }
            });
        }
    });
    // All threads materialised one shared cache, and racing did not
    // duplicate states: the set of DFA states reached is exactly the
    // cold oracle's, whatever the interleaving.
    let oracle = simple_scanner(keywords);
    for input in INPUTS {
        let _ = oracle.tokenize(input);
    }
    assert_eq!(shared.dfa_stats().states, oracle.dfa_stats().states);
    assert!(shared.dfa_stats().cache_hits > 0);
}

#[test]
fn lexical_modify_races_tokenizers_with_per_epoch_oracles() {
    let keywords = &["true", "false", "or", "and"];
    let server = IpgServer::new(IpgSession::new(fixtures::booleans()))
        .with_scanner(simple_scanner(keywords));
    let input = "true % false";
    let stable_input = "true or false -- comment\n";

    // Cold single-threaded oracles for the two lexical generations the
    // writer cycles between. `Scanner::rebuilds` counts definition changes,
    // so generation parity identifies the definition set: even = base,
    // odd = base + `%`.
    let base = simple_scanner(keywords);
    let with_percent = {
        let mut s = simple_scanner(keywords);
        s.add_definition(TokenDef::keyword("%"));
        s
    };
    let oracle_base = base.tokenize(input);
    let oracle_percent = with_percent.tokenize(input);
    assert!(oracle_base.is_err(), "`%` does not scan under the base syntax");
    let oracle_stable_base = base.tokenize(stable_input).unwrap();
    let oracle_stable_percent = with_percent.tokenize(stable_input).unwrap();
    assert_eq!(oracle_stable_base, oracle_stable_percent);

    let cycles = if cfg!(debug_assertions) { 8 } else { 20 };
    let done = AtomicBool::new(false);
    thread::scope(|scope| {
        for _ in 0..4 {
            let server = &server;
            let done = &done;
            let oracle_base = &oracle_base;
            let oracle_percent = &oracle_percent;
            let oracle_stable = &oracle_stable_base;
            scope.spawn(move || loop {
                let finished = done.load(Ordering::Acquire);
                // Pin one epoch; everything observed below belongs to it.
                let epoch = server.current_epoch();
                let scanner = epoch.scanner().expect("server has a scanner");
                let generation = scanner.rebuilds();
                let expected = if generation.is_multiple_of(2) {
                    oracle_base
                } else {
                    oracle_percent
                };
                assert_eq!(
                    &scanner.tokenize(input),
                    expected,
                    "lexical generation {generation}"
                );
                // Inputs untouched by the edit scan identically everywhere.
                assert_eq!(&scanner.tokenize(stable_input).unwrap(), oracle_stable);
                drop(epoch);
                if finished {
                    break;
                }
            });
        }
        scope.spawn(|| {
            for _ in 0..cycles {
                server
                    .modify_scanner(|s| s.add_definition(TokenDef::keyword("%")))
                    .unwrap();
                thread::yield_now();
                server
                    .modify_scanner(|s| {
                        assert!(s.remove_definition("%"));
                    })
                    .unwrap();
                thread::yield_now();
            }
            done.store(true, Ordering::Release);
        });
    });

    // Every lexical edit published an epoch sharing the table state...
    let stats = server.stats();
    assert_eq!(stats.graph.epochs_published, 2 * cycles);
    assert_eq!(stats.graph.modifications, 0, "no grammar modification ran");
    // ...and with all readers gone, every retired epoch (and its DFA
    // snapshot) has been reclaimed.
    assert_eq!(stats.retired_epochs, 0);
    assert_eq!(stats.graph.epochs_reclaimed, 2 * cycles);
}

/// The DFA carry-over across a lexical `MODIFY`: a definition change that
/// touches one token class must (a) keep every token stream equal to a
/// cold scanner oracle built with the post-edit definitions, and (b) keep
/// a nonzero number of already-materialised DFA states alive instead of
/// rebuilding the automaton from zero — observable through the scanner's
/// carried-states counter and the server's `GenStats`.
#[test]
fn lexical_modify_carries_over_dfa_states_and_matches_cold_oracle() {
    let keywords = &["true", "false", "or", "and"];
    let server = IpgServer::new(IpgSession::new(fixtures::booleans()))
        .with_scanner(simple_scanner(keywords));
    // Materialise a healthy part of the DFA before the edit.
    for input in INPUTS {
        let epoch = server.current_epoch();
        let _ = epoch.scanner().expect("scanner attached").tokenize(input);
    }
    let states_before = {
        let epoch = server.current_epoch();
        epoch.scanner().unwrap().dfa_stats().states
    };
    assert!(states_before > 3, "warm-up materialised states");
    assert_eq!(server.stats().graph.dfa_states_carried, 0);

    // One lexical MODIFY touching one token class.
    server
        .modify_scanner(|s| s.add_definition(TokenDef::keyword("%")))
        .unwrap();

    let epoch = server.current_epoch();
    let scanner = epoch.scanner().unwrap();
    // (b) the post-edit snapshot reports carried-over states — everything
    // but the start state survived the addition.
    assert_eq!(scanner.carried_states(), states_before - 1);
    assert_eq!(scanner.dfa_stats().carried_over, states_before - 1);
    assert_eq!(
        server.stats().graph.dfa_states_carried,
        states_before - 1,
        "the carry-over counter reaches the server's GenStats"
    );
    // (a) token streams equal a cold post-edit oracle, for old inputs and
    // for input using the new token class.
    let cold = {
        let mut s = simple_scanner(keywords);
        s.add_definition(TokenDef::keyword("%"));
        s
    };
    for input in INPUTS.iter().copied().chain(["true % false", "%%"]) {
        assert_eq!(scanner.tokenize(input), cold.tokenize(input), "input `{input}`");
    }
    // The carried states keep serving: re-scanning a stable input through
    // the shared scanner re-derives less than the cold oracle had to.
    let stable_input = "true or false and true -- comment\n";
    cold.tokenize(stable_input).unwrap();
    let misses_before = scanner.dfa_stats().cache_misses;
    scanner.tokenize(stable_input).unwrap();
    let incremental_misses = scanner.dfa_stats().cache_misses - misses_before;
    assert!(
        incremental_misses < cold.dfa_stats().cache_misses,
        "carry-over saved subset-construction work ({incremental_misses} vs {})",
        cold.dfa_stats().cache_misses
    );

    // A removal touching one token class carries over too, and the
    // counter keeps accumulating.
    drop(epoch);
    server
        .modify_scanner(|s| {
            assert!(s.remove_definition("%"));
        })
        .unwrap();
    let epoch = server.current_epoch();
    let scanner = epoch.scanner().unwrap();
    assert!(scanner.carried_states() > states_before - 1);
    let cold_base = simple_scanner(keywords);
    for input in INPUTS {
        assert_eq!(scanner.tokenize(input), cold_base.tokenize(input), "input `{input}`");
    }
    assert!(server.stats().graph.dfa_states_carried > states_before - 1);
}

#[test]
fn pinned_epoch_keeps_its_lexical_syntax_across_modify() {
    let server = IpgServer::new(IpgSession::new(fixtures::booleans()))
        .with_scanner(simple_scanner(&["true", "or"]));
    let pinned = server.current_epoch();
    server
        .modify_scanner(|s| s.add_definition(TokenDef::keyword("%")))
        .unwrap();
    // The pinned epoch still scans with the old lexical syntax...
    assert!(matches!(
        pinned.scanner().unwrap().tokenize("true % true"),
        Err(ScanError::UnexpectedCharacter { .. })
    ));
    // ...while the current epoch scans `%` (and then fails later, in the
    // grammar, which has no such terminal).
    assert!(matches!(
        server.parse_text("true % true"),
        Err(ipg::ServerError::Scan(ScanError::UnknownTerminal { .. }))
    ));
    // Both epochs share one table state: same grammar version.
    assert_eq!(pinned.grammar_version(), server.grammar_version());
}
