//! Parallel-warm equivalence: `expand_all_parallel(N)` must produce a
//! graph *bit-identical* to the serial warm — same state numbering, same
//! kernels, same transitions/reductions, same published rows — because
//! the parallel fan-out only distributes the read-only closure half of
//! each expansion; kernels are interned serially in the exact order the
//! serial loop would have used.
//!
//! Checked over random grammars (proptest) and on the wide synthetic
//! grammar the cold-start bench measures.
//!
//! Case count: `IPG_PROPTEST_CASES` (the CI epoch-stress job runs 256 in
//! release mode), defaulting to a debug-friendly handful locally.

use ipg::{IpgServer, IpgSession};
use ipg_bench::wide_synthetic_workload;
use proptest::prelude::*;

mod common;
use common::{digest, grammar_spec, resolve_sentence, sentence};

fn cases() -> u32 {
    std::env::var("IPG_PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if cfg!(debug_assertions) { 12 } else { 48 })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    /// Random grammar, random sentences: the serially warmed and the
    /// parallel-warmed sessions render identical graphs (state ids,
    /// kernels, transitions, reductions) and parse identically.
    #[test]
    fn parallel_warm_equals_serial_warm(
        spec in grammar_spec(true),
        sentences in prop::collection::vec(sentence(6), 1..4),
    ) {
        let grammar = spec.build();
        let serial = IpgSession::new(grammar.clone());
        serial.expand_all_parallel(1);
        let parallel = IpgSession::new(grammar.clone());
        parallel.expand_all_parallel(4);
        prop_assert_eq!(serial.render_graph(), parallel.render_graph());
        prop_assert!((serial.coverage() - 1.0).abs() < f64::EPSILON);
        prop_assert!((parallel.coverage() - 1.0).abs() < f64::EPSILON);
        // The generator did the same work, batched identically.
        let (s, p) = (serial.stats(), parallel.stats());
        prop_assert_eq!(s.expansions, p.expansions);
        prop_assert_eq!(s.closures, p.closures);
        prop_assert_eq!(s.rows_built, p.rows_built);
        prop_assert_eq!(s.warm_batches_published, p.warm_batches_published);
        for codes in &sentences {
            let tokens = resolve_sentence(serial.grammar(), codes);
            let a = digest(&serial.parse(&tokens));
            let b = digest(&parallel.parse(&tokens));
            prop_assert_eq!(a, b);
        }
    }
}

/// The bench's wide synthetic grammar (5000 productions in release; a
/// smaller instance under `cargo test` in debug, where closure costs are
/// an order of magnitude higher): serial and 4-way-parallel warm must
/// agree state for state, and the fan-out counters must surface through
/// `IpgServer::stats`.
#[test]
fn wide_synthetic_grammar_warms_identically_in_parallel() {
    let productions = if cfg!(debug_assertions) { 300 } else { 5000 };
    let wide = wide_synthetic_workload(productions);

    let serial = IpgSession::new(wide.grammar.clone());
    serial.expand_all_parallel(1);
    let parallel = IpgSession::new(wide.grammar.clone());
    parallel.expand_all_parallel(4);
    assert_eq!(serial.render_graph(), parallel.render_graph());
    let (s, p) = (serial.stats(), parallel.stats());
    assert_eq!(s.expansions, p.expansions);
    assert_eq!(s.rows_built, p.rows_built);
    assert_eq!(s.warm_batches_published, p.warm_batches_published);
    assert_eq!(s.warm_threads_used, 1);
    assert_eq!(p.warm_threads_used, 4);
    assert!(p.warm_batches_published > 0);
    assert!(serial.parse(&wide.sentence).accepted);
    assert!(parallel.parse(&wide.sentence).accepted);

    // The server plumbing: `warm_parallel` warms the published epoch and
    // reports the fan-out through the aggregated stats.
    let server = IpgServer::new(IpgSession::new(wide.grammar.clone()));
    server.warm_parallel(4);
    let stats = server.stats();
    assert_eq!(stats.graph.warm_threads_used, 4);
    assert_eq!(stats.graph.expansions, s.expansions);
    assert!(server.parse(&wide.sentence).accepted);
}
