//! Incremental re-parse equivalence: random edit scripts applied to open
//! document sessions must be indistinguishable from cold re-parses of the
//! spliced text.
//!
//! The contract under test, per edit:
//!
//! * the document's text equals an independently maintained oracle string
//!   (the server applies exactly the requested splice);
//! * if the edited text lexes, the session's parse result digest-matches a
//!   cold `PARSE-TEXT` of the full spliced text — whether the server took
//!   the incremental path or the full-rebuild fallback;
//! * if the edited text does not lex, both the edit and the cold parse
//!   fail (and the session recovers on a later lexable edit);
//! * the `reparse_incremental` / `reparse_full` counters account for every
//!   successful edit, and an edit raced with a grammar or scanner `MODIFY`
//!   always takes the full path — parse state is never spliced across
//!   epochs.
//!
//! Edits are random byte-range splices, deliberately including
//! token-boundary-straddling replacements (which glue identifiers together
//! and can make the text unlexable), whitespace-only edits, pure
//! deletions and appends at EOF. Case count: `IPG_PROPTEST_CASES` (the CI
//! epoch-stress job runs 256 in release), defaulting to a debug-friendly
//! handful locally.

use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use ipg::{IpgServer, IpgSession};
use ipg_frontend::{Client, Frontend, FrontendConfig, ShutdownMode};
use ipg_frontend::protocol::{write_request, Status, Verb};
use ipg_grammar::fixtures;
use ipg_lexer::simple_scanner;
use proptest::prelude::*;

mod common;
use common::{digest, grammar_spec, GrammarSpec, TERMINAL_NAMES};

/// One relative edit: resolved against the document's current length, so
/// a fixed script stays applicable as the text grows and shrinks.
#[derive(Clone, Debug)]
struct EditSpec {
    at: usize,
    del: usize,
    /// Replacement character codes: `0..3` are the terminals `a`/`b`/`c`,
    /// `3..` is a space.
    repl: Vec<usize>,
}

impl EditSpec {
    /// Resolves to a concrete `(start..end, replacement)` splice of
    /// `text`. The text is pure ASCII, so every offset is a char boundary.
    fn resolve(&self, text: &str) -> (usize, usize, String) {
        let start = self.at % (text.len() + 1);
        let end = (start + self.del).min(text.len());
        let repl = self
            .repl
            .iter()
            .map(|&c| ['a', 'b', 'c', ' ', ' '][c.min(4)])
            .collect();
        (start, end, repl)
    }
}

fn edit_strategy() -> impl Strategy<Value = EditSpec> {
    (
        0..10_000usize,
        0..8usize,
        prop::collection::vec(0..5usize, 0..6),
    )
        .prop_map(|(at, del, repl)| EditSpec { at, del, repl })
}

/// A document: space-separated terminal names over `a`/`b`/`c`.
fn document(codes: &[usize]) -> String {
    codes
        .iter()
        .map(|&c| TERMINAL_NAMES[c])
        .collect::<Vec<_>>()
        .join(" ")
}

fn spec_server(spec: &GrammarSpec) -> IpgServer {
    IpgServer::new(IpgSession::new(spec.build()))
        .with_scanner(simple_scanner(&TERMINAL_NAMES[..3]))
}

fn cases() -> u32 {
    std::env::var("IPG_PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if cfg!(debug_assertions) { 10 } else { 48 })
}

/// One step of the raced script: an edit, or an epoch-publishing
/// modification. The modifications are language- and lexing-preserving
/// no-ops, so the cold oracle stays valid while every pinned epoch goes
/// stale.
#[derive(Clone, Debug)]
enum Op {
    Edit(EditSpec),
    /// `MODIFY` of the grammar (publishes a new epoch; same language).
    Modify,
    /// `MODIFY` of the scanner (publishes a new epoch; same tokens).
    ModifyScanner,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        edit_strategy().prop_map(Op::Edit),
        edit_strategy().prop_map(Op::Edit),
        edit_strategy().prop_map(Op::Edit),
        Just(Op::Modify),
        Just(Op::ModifyScanner),
    ]
}

/// Applies one edit to both the session and the text oracle and checks
/// the equivalence contract. Returns whether the edit parsed (`Ok`).
fn check_edit(
    server: &IpgServer,
    id: u64,
    text: &mut String,
    edit: &EditSpec,
) -> Result<bool, TestCaseError> {
    let (start, end, repl) = edit.resolve(text);
    let incremental = server.apply_edit(id, start..end, &repl);
    text.replace_range(start..end, &repl);
    prop_assert_eq!(
        &server.document_text(id).unwrap(),
        text,
        "the splice itself diverged"
    );
    let cold = server.parse_text(text);
    match (&incremental, &cold) {
        (Ok(_), Ok(cold_result)) => {
            let session_result = server.document_result(id).unwrap();
            prop_assert_eq!(
                digest(&session_result),
                digest(cold_result),
                "incremental result diverged from the cold re-parse of {:?}",
                text
            );
            Ok(true)
        }
        // Unlexable edited text: both sides must say so.
        (Err(_), Err(_)) => Ok(false),
        (Err(_), Ok(cold_result)) => {
            // The cold pipeline is fused and lazy: if every parser dies
            // before the lexical error is reached, the rest of the text is
            // never scanned and the cold parse reports a plain rejection.
            // The eager re-lex of the incremental path still surfaces the
            // scan error — but it must never contradict an *acceptance*.
            prop_assert!(
                !cold_result.accepted,
                "incremental scan error on {:?} but the cold parse accepted",
                text
            );
            Ok(false)
        }
        (Ok(_), Err(_)) => {
            prop_assert!(
                false,
                "incremental parse succeeded on {:?} but the cold parse failed to scan",
                text
            );
            unreachable!()
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    /// Random grammars × random documents × random edit scripts: every
    /// edit digest-matches a cold re-parse, and the incremental/full
    /// counters account for every successful edit.
    #[test]
    fn random_edit_scripts_match_cold_reparses(
        spec in grammar_spec(true),
        doc in prop::collection::vec(0..3usize, 0..=16),
        edits in prop::collection::vec(edit_strategy(), 1..=10),
    ) {
        let server = spec_server(&spec);
        let mut text = document(&doc);
        let id = server.open_document(&text).expect("initial document lexes");
        let mut parsed_edits = 0usize;
        for edit in &edits {
            if check_edit(&server, id, &mut text, edit)? {
                parsed_edits += 1;
            }
        }
        let merged = server.stats().merged();
        prop_assert_eq!(
            merged.reparse_incremental + merged.reparse_full,
            parsed_edits,
            "every successful edit is counted exactly once"
        );
        server.close_document(id).unwrap();
        // The session pinned only the live epoch: nothing left to reclaim.
        prop_assert_eq!(server.stats().retired_epochs, 0);
    }

    /// Edits interleaved with grammar/scanner `MODIFY`: an edit whose
    /// pinned epoch went stale must take the full-re-parse path (counted
    /// in `reparse_full`), and still digest-match the cold oracle.
    #[test]
    fn edits_raced_with_modify_fall_back_to_full_reparse(
        doc in prop::collection::vec(0..3usize, 0..=12),
        ops in prop::collection::vec(op_strategy(), 1..=12),
    ) {
        // A fixed ambiguous grammar over the same alphabet, so `MODIFY`
        // no-ops are language-preserving by construction.
        let server = IpgServer::from_bnf(r#"
            N0 ::= "a" | "b" | "c" | N0 N0 |
            START ::= N0
        "#).unwrap().with_scanner(simple_scanner(&TERMINAL_NAMES[..3]));
        let mut text = document(&doc);
        let id = server.open_document(&text).expect("initial document lexes");

        // Mirror of the session's staleness state: `stale` tracks whether
        // an epoch was published since the session last (re-)pinned,
        // `synced` whether its parse state survived the last edit.
        let (mut stale, mut synced) = (false, true);
        let (mut want_full, mut want_incremental) = (0usize, 0usize);
        for op in &ops {
            match op {
                Op::Modify => {
                    server.modify(|_| {});
                    stale = true;
                }
                Op::ModifyScanner => {
                    server.modify_scanner(|_| {}).unwrap();
                    stale = true;
                }
                Op::Edit(edit) => {
                    let full_path = stale || !synced;
                    if check_edit(&server, id, &mut text, edit)? {
                        if full_path { want_full += 1 } else { want_incremental += 1 }
                        synced = true;
                        stale = false;
                    } else {
                        synced = false;
                        // The full path re-pins before lexing fails.
                        if full_path { stale = false }
                    }
                }
            }
        }
        let merged = server.stats().merged();
        prop_assert_eq!(merged.reparse_full, want_full, "stale/desynced edits take the full path");
        prop_assert_eq!(merged.reparse_incremental, want_incremental);
        server.close_document(id).unwrap();
    }
}

/// A grammar `MODIFY` that *changes the language* between edits: the next
/// edit must see the new language (proof that the fallback re-parses
/// against the fresh epoch instead of splicing stale state).
#[test]
fn stale_epoch_edits_see_the_new_language() {
    // `c` is interned (via the `"c" "c"` alternative) but a single `c`
    // is not a sentence former yet.
    let server = IpgServer::from_bnf(
        r#"
        N0 ::= "a" | N0 "b" | "c" "c"
        START ::= N0
    "#,
    )
    .unwrap()
    .with_scanner(simple_scanner(&TERMINAL_NAMES[..3]));
    let id = server.open_document("a b b").unwrap();
    assert!(server.document_result(id).unwrap().accepted);

    // An edit introducing a lone `c` rejects.
    server.apply_edit(id, 0..1, "c").unwrap();
    assert!(!server.document_result(id).unwrap().accepted);
    server.apply_edit(id, 0..1, "a").unwrap();

    // ADD-RULE makes `c` an alternative; the session's pinned epoch is now
    // stale, so the same edit must re-parse fully — and accept.
    server.add_rule_text(r#"N0 ::= "c""#).unwrap();
    let outcome = server.apply_edit(id, 0..1, "c").unwrap();
    assert!(outcome.accepted(), "the fallback re-parse sees the added rule");
    let merged = server.stats().merged();
    assert_eq!(merged.reparse_full, 1);
    assert_eq!(merged.reparse_incremental, 2);
    server.close_document(id).unwrap();
}

/// Free-running race: a thread publishing epochs at full speed while the
/// main thread streams edits. Every successful edit must still
/// digest-match its cold oracle, and the counters must account for every
/// edit — whichever path each one took.
#[test]
fn concurrent_modify_race_preserves_equivalence() {
    let server = IpgServer::from_bnf(
        r#"
        N0 ::= "a" | "b" | N0 N0
        START ::= N0
    "#,
    )
    .unwrap()
    .with_scanner(simple_scanner(&TERMINAL_NAMES[..3]));
    let id = server.open_document("a b a b").unwrap();
    let done = AtomicBool::new(false);

    let parsed = thread::scope(|scope| {
        scope.spawn(|| {
            while !done.load(Ordering::Acquire) {
                server.modify(|_| {});
                thread::yield_now();
            }
        });
        let mut text = String::from("a b a b");
        let mut parsed = 0usize;
        let script: &[(usize, usize, &str)] = &[
            (0, 1, "b"),
            (2, 3, "a b"),
            (0, 0, "a "),
            (4, 5, ""),
            (0, 2, ""),
            (0, 0, "b "),
        ];
        for &(start, end, repl) in script {
            let end = end.min(text.len());
            let start = start.min(end);
            server.apply_edit(id, start..end, repl).unwrap();
            text.replace_range(start..end, repl);
            let cold = server.parse_text(&text).unwrap();
            assert_eq!(
                digest(&server.document_result(id).unwrap()),
                digest(&cold),
                "text {text:?}"
            );
            parsed += 1;
        }
        done.store(true, Ordering::Release);
        parsed
    });

    let merged = server.stats().merged();
    assert_eq!(merged.reparse_incremental + merged.reparse_full, parsed);
    server.close_document(id).unwrap();
}

// --- PARSE-DELTA over the wire -------------------------------------------

fn boolean_server() -> Arc<IpgServer> {
    Arc::new(
        IpgServer::new(IpgSession::new(fixtures::booleans()))
            .with_scanner(simple_scanner(&["true", "false", "or", "and"])),
    )
}

fn frontend_config(workers: usize) -> FrontendConfig {
    FrontendConfig {
        workers,
        queue_depth: 8,
        read_timeout: Duration::from_millis(100),
        ..FrontendConfig::default()
    }
}

#[test]
fn parse_delta_round_trips_and_unknown_documents_answer_error() {
    let frontend = Frontend::bind("127.0.0.1:0", frontend_config(2), boolean_server())
        .expect("bind frontend");
    let mut client = Client::connect(frontend.local_addr()).expect("connect");
    client
        .set_response_timeout(Some(Duration::from_secs(10)))
        .expect("response timeout");

    // A delta to a document that was never opened answers ERROR — it does
    // not hang and does not poison the connection.
    let response = client.parse_delta(9999, 0, 0, "true", 0).expect("one reply");
    assert_eq!(response.status, Status::Error);
    assert!(String::from_utf8_lossy(&response.payload).contains("unknown document"));

    // The connection is still healthy: open, edit, close.
    let response = client.open_doc("true or false", 0).expect("open");
    assert_eq!(response.status, Status::Ok);
    let (doc_id, accepted, _) = Client::open_doc_outcome(&response).expect("open payload");
    assert!(accepted);

    // `false` -> `true and true` (bytes 8..13 of the original text).
    let response = client
        .parse_delta(doc_id, 8, 13, "true and true", 0)
        .expect("delta");
    assert_eq!(response.status, Status::Ok);
    let (accepted, _) = response.parse_outcome().expect("parse outcome payload");
    assert!(accepted);

    // An out-of-range delta answers ERROR and leaves the session usable.
    let response = client.parse_delta(doc_id, 500, 600, "x", 0).expect("reply");
    assert_eq!(response.status, Status::Error);
    assert!(String::from_utf8_lossy(&response.payload).contains("invalid edit range"));
    let response = client.parse_delta(doc_id, 0, 0, "", 0).expect("no-op delta");
    assert_eq!(response.status, Status::Ok);

    assert_eq!(client.close_doc(doc_id).expect("close").status, Status::Ok);
    // Closing twice: the id is gone.
    assert_eq!(client.close_doc(doc_id).expect("reply").status, Status::Error);
    frontend.shutdown(ShutdownMode::Drain);
}

#[test]
fn expired_deadline_delta_is_shed_without_mutating_the_session() {
    let server = boolean_server();
    let frontend =
        Frontend::bind("127.0.0.1:0", frontend_config(1), server).expect("bind frontend");
    let addr = frontend.local_addr();

    let mut client = Client::connect(addr).expect("connect");
    client
        .set_response_timeout(Some(Duration::from_secs(10)))
        .expect("response timeout");
    let response = client.open_doc("true or false", 0).expect("open");
    let (doc_id, _, _) = Client::open_doc_outcome(&response).expect("open payload");

    // Occupy the single worker with pipelined slow parses (the ambiguous
    // or-chain), so a 1 µs-deadline delta expires in the queue.
    let mut slow = String::from("true");
    for _ in 0..120 {
        slow.push_str(" or true");
    }
    let mut busy = TcpStream::connect(addr).expect("connect busy pipeline");
    let mut buf = Vec::new();
    for request_id in 1..=3u64 {
        write_request(&mut busy, &mut buf, request_id, Verb::ParseText, 0, 0, slow.as_bytes())
            .expect("pipeline slow request");
    }

    // The shed delta would have *deleted the whole document*. It must not
    // touch the session.
    let response = client
        .parse_delta(doc_id, 0, 13, "", 1)
        .expect("one reply even when shed");
    assert_eq!(response.status, Status::DeadlineExceeded);

    // Proof of no mutation: a delta addressing the document's final byte
    // (valid only at the original 13-byte length) succeeds, and the text
    // still parses as the original sentence.
    let response = client.parse_delta(doc_id, 12, 13, "e", 0).expect("probe delta");
    assert_eq!(response.status, Status::Ok, "the shed delta did not shrink the text");
    let (accepted, _) = response.parse_outcome().expect("outcome");
    assert!(accepted);

    let stats = frontend.stats();
    assert_eq!(stats.shed_deadline, 1);
    frontend.shutdown(ShutdownMode::Drain);
}
